/**
 * @file
 * Single-header, google-benchmark-compatible mini framework.
 *
 * Offline fallback used when the system google-benchmark package is
 * unavailable (see the bench/ section of the root CMakeLists.txt).
 * Implements the subset of the API the bench/ binaries use: State
 * with range-for iteration, iterations()/range()/SetItemsProcessed/
 * SetLabel/PauseTiming/ResumeTiming, BENCHMARK() with ->Arg()/
 * ->Unit() chaining, Initialize/RunSpecifiedBenchmarks/Shutdown and
 * DoNotOptimize. Timing is wall-clock with a short calibration loop;
 * numbers are indicative, not publication-grade.
 */

#ifndef PIFETCH_THIRD_PARTY_MINIBENCH_BENCHMARK_H
#define PIFETCH_THIRD_PARTY_MINIBENCH_BENCHMARK_H

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace benchmark {

enum TimeUnit { kNanosecond, kMicrosecond, kMillisecond, kSecond };

template <typename T>
inline void
DoNotOptimize(T &&value)
{
    asm volatile("" : : "g"(value) : "memory");
}

inline void
ClobberMemory()
{
    asm volatile("" : : : "memory");
}

class State
{
  public:
    State(std::int64_t iterations, std::vector<std::int64_t> args)
        : max_(iterations), args_(std::move(args))
    {
    }

    /** Non-trivial so `for (auto _ : state)` never warns as unused. */
    struct Value {
        Value() {}
        ~Value() {}
    };

    struct iterator {
        State *state;
        std::int64_t remaining;

        bool
        operator!=(const iterator &other) const
        {
            return remaining != other.remaining;
        }

        void operator++() { --remaining; }
        Value operator*() const { return Value(); }
    };

    iterator
    begin()
    {
        start_ = Clock::now();
        excluded_ = Duration::zero();
        return {this, max_};
    }

    iterator
    end()
    {
        return {this, 0};
    }

    std::int64_t iterations() const { return max_; }

    std::int64_t
    range(std::size_t i = 0) const
    {
        return i < args_.size() ? args_[i] : 0;
    }

    void SetItemsProcessed(std::int64_t n) { items_ = n; }
    void SetLabel(const std::string &label) { label_ = label; }

    void PauseTiming() { pauseStart_ = Clock::now(); }
    void ResumeTiming() { excluded_ += Clock::now() - pauseStart_; }

    /** Internal: measured seconds for the whole iteration loop. */
    double
    minibenchElapsedSeconds() const
    {
        const Duration d = Clock::now() - start_ - excluded_;
        return std::chrono::duration<double>(d).count();
    }

    std::int64_t minibenchItems() const { return items_; }
    const std::string &minibenchLabel() const { return label_; }

  private:
    using Clock = std::chrono::steady_clock;
    using Duration = Clock::duration;

    std::int64_t max_;
    std::vector<std::int64_t> args_;
    std::int64_t items_ = 0;
    std::string label_;
    Clock::time_point start_{};
    Clock::time_point pauseStart_{};
    Duration excluded_ = Duration::zero();
};

namespace internal {

/** One registered benchmark function with its run configurations. */
class Benchmark
{
  public:
    using Fn = void (*)(State &);

    Benchmark(std::string name, Fn fn) : name_(std::move(name)), fn_(fn) {}

    Benchmark *
    Arg(std::int64_t a)
    {
        argSets_.push_back({a});
        return this;
    }

    Benchmark *
    Args(std::vector<std::int64_t> as)
    {
        argSets_.push_back(std::move(as));
        return this;
    }

    Benchmark *
    DenseRange(std::int64_t lo, std::int64_t hi)
    {
        for (std::int64_t a = lo; a <= hi; ++a)
            argSets_.push_back({a});
        return this;
    }

    Benchmark *
    Unit(TimeUnit unit)
    {
        unit_ = unit;
        return this;
    }

    Benchmark *
    Iterations(std::int64_t n)
    {
        fixedIterations_ = n;
        return this;
    }

    void
    run() const
    {
        const std::vector<std::vector<std::int64_t>> sets =
            argSets_.empty() ? std::vector<std::vector<std::int64_t>>{{}}
                             : argSets_;
        for (const auto &args : sets) {
            std::string name = name_;
            for (std::int64_t a : args)
                name += "/" + std::to_string(a);
            runOne(name, args);
        }
    }

  private:
    void
    runOne(const std::string &name, const std::vector<std::int64_t> &args)
        const
    {
        // Calibrate: grow the iteration count until the loop runs for
        // at least ~50 ms (or a fixed count was requested).
        std::int64_t n = fixedIterations_ > 0 ? fixedIterations_ : 1;
        double secs = 0.0;
        std::int64_t items = 0;
        std::string label;
        for (;;) {
            State st(n, args);
            fn_(st);
            secs = st.minibenchElapsedSeconds();
            items = st.minibenchItems();
            label = st.minibenchLabel();
            if (fixedIterations_ > 0 || secs >= 0.05 || n >= (1 << 24))
                break;
            const double target = 0.075;
            const double grow =
                secs > 1e-9 ? target / secs : 1000.0;
            const std::int64_t next =
                static_cast<std::int64_t>(n * (grow < 2.0 ? 2.0 : grow));
            n = next > n ? next : n + 1;
        }

        const double perIter = n > 0 ? secs / static_cast<double>(n) : 0.0;
        double shown = perIter;
        const char *suffix = "ns";
        switch (unit_) {
          case kNanosecond: shown = perIter * 1e9; suffix = "ns"; break;
          case kMicrosecond: shown = perIter * 1e6; suffix = "us"; break;
          case kMillisecond: shown = perIter * 1e3; suffix = "ms"; break;
          case kSecond: suffix = "s"; break;
        }
        std::printf("%-44s %12.3f %s %10lld iters", name.c_str(), shown,
                    suffix, static_cast<long long>(n));
        if (items > 0 && secs > 0.0)
            std::printf("  %10.2f M items/s",
                        static_cast<double>(items) / secs / 1e6);
        if (!label.empty())
            std::printf("  %s", label.c_str());
        std::printf("\n");
        std::fflush(stdout);
    }

    std::string name_;
    Fn fn_;
    std::vector<std::vector<std::int64_t>> argSets_;
    TimeUnit unit_ = kNanosecond;
    std::int64_t fixedIterations_ = 0;
};

inline std::vector<Benchmark *> &
registry()
{
    static std::vector<Benchmark *> r;
    return r;
}

inline Benchmark *
RegisterBenchmarkInternal(const char *name, Benchmark::Fn fn)
{
    registry().push_back(new Benchmark(name, fn));
    return registry().back();
}

} // namespace internal

inline void
Initialize(int *, char **)
{
    std::printf("minibench: offline google-benchmark fallback "
                "(indicative timings only)\n");
}

inline std::size_t
RunSpecifiedBenchmarks()
{
    for (const internal::Benchmark *b : internal::registry())
        b->run();
    return internal::registry().size();
}

inline void
Shutdown()
{
}

} // namespace benchmark

#define MINIBENCH_CONCAT_(a, b) a##b
#define MINIBENCH_NAME_(name, line) MINIBENCH_CONCAT_(name, line)

#define BENCHMARK(fn)                                                         \
    [[maybe_unused]] static ::benchmark::internal::Benchmark *MINIBENCH_NAME_(\
        minibench_reg_##fn##_, __LINE__) =                                    \
        ::benchmark::internal::RegisterBenchmarkInternal(#fn, fn)

#define BENCHMARK_MAIN()                                                      \
    int main(int argc, char **argv)                                           \
    {                                                                         \
        ::benchmark::Initialize(&argc, argv);                                 \
        ::benchmark::RunSpecifiedBenchmarks();                                \
        ::benchmark::Shutdown();                                              \
        return 0;                                                             \
    }

#endif // PIFETCH_THIRD_PARTY_MINIBENCH_BENCHMARK_H
