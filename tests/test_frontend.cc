/**
 * @file
 * Front-end model tests: access derivation, wrong-path injection,
 * tagging, trap redirects.
 */

#include <gtest/gtest.h>

#include "core/frontend.hh"
#include "test_util.hh"
#include "trace/executor.hh"

namespace pifetch {
namespace {

SystemConfig
testConfig()
{
    SystemConfig cfg;
    cfg.l1i.sizeBytes = 8 * 1024;  // small cache: misses happen
    return cfg;
}

RetiredInstr
plainAt(Addr pc, TrapLevel tl = 0)
{
    RetiredInstr r;
    r.pc = pc;
    r.kind = InstrKind::Plain;
    r.trapLevel = tl;
    return r;
}

TEST(Frontend, CollapsesSameBlockFetches)
{
    SystemConfig cfg = testConfig();
    Cache l1i(cfg.l1i);
    Frontend fe(cfg, l1i, 1);
    std::vector<FetchAccess> ev;

    fe.step(plainAt(0x1000), ev);
    fe.step(plainAt(0x1004), ev);
    fe.step(plainAt(0x1008), ev);
    ASSERT_EQ(ev.size(), 1u);
    EXPECT_EQ(ev[0].block, blockAddr(0x1000));
    EXPECT_TRUE(ev[0].correctPath);
    EXPECT_FALSE(ev[0].hit);  // cold cache
}

TEST(Frontend, BlockTransitionEmitsAccess)
{
    SystemConfig cfg = testConfig();
    Cache l1i(cfg.l1i);
    Frontend fe(cfg, l1i, 1);
    std::vector<FetchAccess> ev;

    fe.step(plainAt(0x1000), ev);
    fe.step(plainAt(0x1040), ev);
    ASSERT_EQ(ev.size(), 2u);
    EXPECT_EQ(ev[1].block, blockAddr(0x1040));
}

TEST(Frontend, SecondVisitHitsAfterFill)
{
    SystemConfig cfg = testConfig();
    Cache l1i(cfg.l1i);
    Frontend fe(cfg, l1i, 1);
    std::vector<FetchAccess> ev;

    fe.step(plainAt(0x1000), ev);    // miss + functional fill
    fe.step(plainAt(0x2000), ev);    // different block
    fe.step(plainAt(0x1000), ev);    // back: must hit now
    ASSERT_EQ(ev.size(), 3u);
    EXPECT_TRUE(ev[2].hit);
}

TEST(Frontend, TaggedUnlessDeliveredFromPrefetchedLine)
{
    SystemConfig cfg = testConfig();
    Cache l1i(cfg.l1i);
    Frontend fe(cfg, l1i, 1);
    std::vector<FetchAccess> ev;

    // Demand-missed block: tagged.
    EXPECT_TRUE(fe.step(plainAt(0x1000), ev));

    // Prefetched block: first demand delivery is untagged...
    l1i.fill(blockAddr(0x3000), true);
    EXPECT_FALSE(fe.step(plainAt(0x3000), ev));
    // ...and the tag is sticky for the rest of the block.
    EXPECT_FALSE(fe.step(plainAt(0x3004), ev));

    // Re-entering the same block later: the prefetch bit was consumed,
    // so the fetch is tagged again.
    fe.step(plainAt(0x4000), ev);
    EXPECT_TRUE(fe.step(plainAt(0x3000), ev));
}

TEST(Frontend, CorrectlyPredictedBranchInjectsNoWrongPath)
{
    SystemConfig cfg = testConfig();
    Cache l1i(cfg.l1i);
    Frontend fe(cfg, l1i, 1);
    std::vector<FetchAccess> ev;

    // A never-taken branch is predicted not-taken from power-on
    // (weakly-taken counters still resolve via BTB-miss fallthrough).
    RetiredInstr br;
    br.pc = 0x1000;
    br.kind = InstrKind::CondBranch;
    br.target = 0x9000;
    br.taken = false;

    // Train.
    for (int i = 0; i < 8; ++i) {
        ev.clear();
        fe.step(br, ev);
    }
    const std::uint64_t wrong_before = fe.wrongPathFetches();
    ev.clear();
    fe.step(br, ev);
    EXPECT_EQ(fe.wrongPathFetches(), wrong_before);
    for (const FetchAccess &a : ev)
        EXPECT_TRUE(a.correctPath);
}

TEST(Frontend, MispredictedBranchInjectsSequentialWrongPath)
{
    SystemConfig cfg = testConfig();
    Cache l1i(cfg.l1i);
    Frontend fe(cfg, l1i, 1);
    std::vector<FetchAccess> ev;

    RetiredInstr br;
    br.pc = 0x1000;
    br.kind = InstrKind::CondBranch;
    br.target = 0x9000;
    br.taken = false;

    // Train the predictor to taken...
    RetiredInstr taken_br = br;
    taken_br.taken = true;
    for (int i = 0; i < 8; ++i) {
        ev.clear();
        fe.step(taken_br, ev);
    }
    // ...then retire it not-taken: predicted taken -> wrong path at
    // the branch target.
    ev.clear();
    const std::uint64_t misp_before = fe.mispredicts();
    fe.step(br, ev);
    EXPECT_EQ(fe.mispredicts(), misp_before + 1);

    bool saw_wrong = false;
    Addr prev_wrong = 0;
    for (const FetchAccess &a : ev) {
        if (!a.correctPath) {
            if (!saw_wrong) {
                EXPECT_EQ(a.block, blockAddr(0x9000));
            } else {
                EXPECT_EQ(a.block, prev_wrong + 1);  // sequential burst
            }
            prev_wrong = a.block;
            saw_wrong = true;
        }
    }
    EXPECT_TRUE(saw_wrong);
    EXPECT_GT(fe.wrongPathFetches(), 0u);
}

TEST(Frontend, ReturnPredictedByRas)
{
    SystemConfig cfg = testConfig();
    Cache l1i(cfg.l1i);
    Frontend fe(cfg, l1i, 1);
    std::vector<FetchAccess> ev;

    RetiredInstr call;
    call.pc = 0x1000;
    call.kind = InstrKind::Call;
    call.target = 0x5000;
    call.taken = true;

    RetiredInstr ret;
    ret.pc = 0x5000;
    ret.kind = InstrKind::Return;
    ret.target = 0x1004;
    ret.taken = true;

    // Train the BTB for the call first (the first call mispredicts on
    // a cold BTB; the return must then be RAS-covered).
    fe.step(call, ev);
    ev.clear();
    const std::uint64_t misp = fe.mispredicts();
    fe.step(ret, ev);
    EXPECT_EQ(fe.mispredicts(), misp) << "RAS should cover the return";
}

TEST(Frontend, TrapLevelChangeForcesRefetchWithoutMispredict)
{
    SystemConfig cfg = testConfig();
    Cache l1i(cfg.l1i);
    Frontend fe(cfg, l1i, 1);
    std::vector<FetchAccess> ev;

    fe.step(plainAt(0x1000), ev);
    const std::uint64_t misp = fe.mispredicts();

    ev.clear();
    fe.step(plainAt(0x8000, 1), ev);  // asynchronous trap entry
    ASSERT_EQ(ev.size(), 1u);
    EXPECT_EQ(ev[0].trapLevel, 1);
    EXPECT_EQ(fe.mispredicts(), misp);

    // Returning to the same block refetches it (pipeline flush).
    ev.clear();
    fe.step(plainAt(0x1004, 0), ev);
    ASSERT_EQ(ev.size(), 1u);
    EXPECT_EQ(ev[0].block, blockAddr(0x1000));
    EXPECT_TRUE(ev[0].hit);  // it was filled on the first access
}

TEST(Frontend, ResetClearsCounters)
{
    SystemConfig cfg = testConfig();
    Cache l1i(cfg.l1i);
    Frontend fe(cfg, l1i, 1);
    std::vector<FetchAccess> ev;
    fe.step(plainAt(0x1000), ev);
    fe.reset();
    EXPECT_EQ(fe.correctPathFetches(), 0u);
    EXPECT_EQ(fe.correctPathMisses(), 0u);
    EXPECT_EQ(fe.mispredicts(), 0u);
}

TEST(Frontend, EndToEndStatisticsAreConsistent)
{
    const Program prog = testutil::tinyProgram(0.5);
    SystemConfig cfg = testConfig();
    Cache l1i(cfg.l1i);
    Frontend fe(cfg, l1i, 2);
    ExecutorConfig ec;
    ec.seed = 9;
    ec.interruptRate = 1e-3;
    Executor exec(prog, ec);

    std::vector<FetchAccess> ev;
    std::uint64_t cp = 0;
    std::uint64_t wp = 0;
    std::uint64_t cp_miss = 0;
    for (int i = 0; i < 50000; ++i) {
        ev.clear();
        fe.step(exec.next(), ev);
        for (const FetchAccess &a : ev) {
            if (a.correctPath) {
                ++cp;
                cp_miss += a.hit ? 0 : 1;
            } else {
                ++wp;
            }
        }
    }
    EXPECT_EQ(cp, fe.correctPathFetches());
    EXPECT_EQ(wp, fe.wrongPathFetches());
    EXPECT_EQ(cp_miss, fe.correctPathMisses());
    EXPECT_LE(fe.mispredicts(), fe.predictions());
}

} // namespace
} // namespace pifetch
