/**
 * @file
 * Differential regression suite over the six server presets.
 *
 * The fuzz harness (`pifetch check`) exercises the cross-engine and
 * thread-invariance oracles on randomized scenarios; this suite pins
 * the same oracles on the fixed presets so they run in every plain
 * CTest invocation, with no fuzzing involved. Any drift between
 * TraceEngine and CycleEngine on retired-instruction streams, fetch
 * sequences or miss counts — or any thread-count dependence of the
 * multicore runners at 1 vs 4 workers — fails here first.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "check/invariants.hh"
#include "sim/multicore.hh"
#include "sim/workloads.hh"

namespace pifetch {
namespace {

constexpr InstCount kWarmup = 60'000;
constexpr InstCount kMeasure = 120'000;

class PresetDifferential
    : public ::testing::TestWithParam<ServerWorkload>
{
};

TEST_P(PresetDifferential, EnginesAgreeOnStreamsAndCounters)
{
    const ServerWorkload w = GetParam();
    const SystemConfig cfg{};
    const Program prog = buildWorkloadProgram(w);

    for (const PrefetcherKind kind :
         {PrefetcherKind::None, PrefetcherKind::Pif}) {
        TraceEngine trace_engine(cfg, prog, executorConfigFor(w),
                                 makePrefetcher(kind, cfg));
        trace_engine.enableDigests();
        const TraceRunResult trace =
            trace_engine.run(kWarmup, kMeasure);

        CycleEngine cycle_engine(cfg, prog, executorConfigFor(w), kind);
        cycle_engine.enableDigests();
        const CycleRunResult cycle =
            cycle_engine.run(kWarmup, kMeasure);

        // Digest collection must actually have happened — an
        // accidental 0 == 0 comparison would verify nothing.
        EXPECT_NE(trace.retireDigest, 0u);
        EXPECT_NE(trace.accessDigest, 0u);

        std::vector<CheckFailure> failures;
        checkTraceSanity(trace, workloadKey(w),
                         cfg.l1i.sizeBytes / blockBytes, failures);
        checkCycleSanity(cycle, false, failures);
        checkCrossEngine(trace, cycle,
                         kind == PrefetcherKind::None, failures);
        for (const CheckFailure &f : failures) {
            ADD_FAILURE() << workloadKey(w) << "/"
                          << prefetcherName(kind) << ": "
                          << f.invariant << ": " << f.detail;
        }
    }
}

TEST_P(PresetDifferential, MulticoreTraceIsThreadCountInvariant)
{
    const ServerWorkload w = GetParam();
    SystemConfig serial;
    serial.threads = 1;
    SystemConfig pooled;
    pooled.threads = 4;

    const MulticoreTraceResult a = runMulticoreTrace(
        w, PrefetcherKind::Pif, 4, kWarmup / 2, kMeasure / 2, serial);
    const MulticoreTraceResult b = runMulticoreTrace(
        w, PrefetcherKind::Pif, 4, kWarmup / 2, kMeasure / 2, pooled);

    ASSERT_EQ(a.perCore.size(), b.perCore.size());
    std::vector<CheckFailure> failures;
    for (std::size_t core = 0; core < a.perCore.size(); ++core)
        checkTraceIdentical(a.perCore[core], b.perCore[core],
                            "thread-invariance", failures);
    for (const CheckFailure &f : failures)
        ADD_FAILURE() << workloadKey(w) << ": " << f.detail;
}

TEST_P(PresetDifferential, MulticoreCycleIsThreadCountInvariant)
{
    const ServerWorkload w = GetParam();
    SystemConfig serial;
    serial.threads = 1;
    SystemConfig pooled;
    pooled.threads = 4;

    const MulticoreCycleResult a = runMulticoreCycle(
        w, PrefetcherKind::Pif, 2, kWarmup / 2, kMeasure / 2, serial);
    const MulticoreCycleResult b = runMulticoreCycle(
        w, PrefetcherKind::Pif, 2, kWarmup / 2, kMeasure / 2, pooled);

    ASSERT_EQ(a.perCore.size(), b.perCore.size());
    for (std::size_t core = 0; core < a.perCore.size(); ++core) {
        EXPECT_EQ(a.perCore[core].cycles, b.perCore[core].cycles)
            << workloadKey(w) << " core " << core;
        EXPECT_EQ(a.perCore[core].demandMisses,
                  b.perCore[core].demandMisses)
            << workloadKey(w) << " core " << core;
        EXPECT_DOUBLE_EQ(a.perCore[core].uipc, b.perCore[core].uipc)
            << workloadKey(w) << " core " << core;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllSix, PresetDifferential,
    ::testing::ValuesIn(allServerWorkloads()),
    [](const ::testing::TestParamInfo<ServerWorkload> &info) {
        std::string n = workloadGroup(info.param) +
                        workloadName(info.param);
        n.erase(std::remove(n.begin(), n.end(), ' '), n.end());
        return n;
    });

} // namespace
} // namespace pifetch
