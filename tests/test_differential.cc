/**
 * @file
 * Differential regression suite over the six server presets.
 *
 * The fuzz harness (`pifetch check`) exercises the cross-engine and
 * thread-invariance oracles on randomized scenarios; this suite pins
 * the same oracles on the fixed presets so they run in every plain
 * CTest invocation, with no fuzzing involved. Any drift between
 * TraceEngine and CycleEngine on retired-instruction streams, fetch
 * sequences or miss counts — or any thread-count dependence of the
 * multicore runners at 1 vs 4 workers — fails here first.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "check/checker.hh"
#include "check/invariants.hh"
#include "sim/multicore.hh"
#include "sim/workloads.hh"
#include "trace/workload_spec.hh"

namespace pifetch {
namespace {

constexpr InstCount kWarmup = 60'000;
constexpr InstCount kMeasure = 120'000;

/**
 * The event-store shape the windowed oracles use: a fine counter
 * stride, and no prefetch slices (their timing differs across engines,
 * which would misalign the slice streams row for row).
 */
EventStoreOptions
windowedOptions()
{
    EventStoreOptions opts;
    opts.counterWindow = 1'024;
    opts.recordPrefetches = false;
    return opts;
}

/**
 * Drive one workload through both engines with attached event stores
 * and apply the windowed differential oracles.
 */
void
runWindowedOracles(const Program &prog, const ExecutorConfig &exec,
                   PrefetcherKind kind, const std::string &label)
{
    const SystemConfig cfg{};
    EventStore trace_events(windowedOptions());
    TraceEngine trace_engine(cfg, prog, exec,
                             makePrefetcher(kind, cfg));
    ObserverConfig trace_obs;
    trace_obs.events = &trace_events;
    trace_engine.attachObservers(trace_obs);
    trace_engine.run(kWarmup, kMeasure);

    EventStore cycle_events(windowedOptions());
    CycleEngine cycle_engine(cfg, prog, exec, kind);
    ObserverConfig cycle_obs;
    cycle_obs.events = &cycle_events;
    cycle_engine.attachObservers(cycle_obs);
    cycle_engine.run(kWarmup, kMeasure);

    // Recording must actually have happened — two empty stores would
    // compare equal and verify nothing.
    EXPECT_GT(trace_events.sliceCount(), 0u) << label;
    EXPECT_GT(trace_events.counterCount(), 0u) << label;

    std::vector<CheckFailure> failures;
    const bool instant = kind == PrefetcherKind::None;
    checkWindowedCounters(trace_events, cycle_events, instant,
                          failures);
    if (instant)
        checkRegionMissProfile(trace_events, cycle_events, failures);
    for (const CheckFailure &f : failures) {
        ADD_FAILURE() << label << "/" << prefetcherName(kind) << ": "
                      << f.invariant << ": " << f.detail;
    }
}

class PresetDifferential
    : public ::testing::TestWithParam<ServerWorkload>
{
};

TEST_P(PresetDifferential, EnginesAgreeOnStreamsAndCounters)
{
    const ServerWorkload w = GetParam();
    const SystemConfig cfg{};
    const Program prog = buildWorkloadProgram(w);

    for (const PrefetcherKind kind :
         {PrefetcherKind::None, PrefetcherKind::Pif}) {
        TraceEngine trace_engine(cfg, prog, executorConfigFor(w),
                                 makePrefetcher(kind, cfg));
        ObserverConfig obs;
        obs.digests = true;
        trace_engine.attachObservers(obs);
        const TraceRunResult trace =
            trace_engine.run(kWarmup, kMeasure);

        CycleEngine cycle_engine(cfg, prog, executorConfigFor(w), kind);
        cycle_engine.attachObservers(obs);
        const CycleRunResult cycle =
            cycle_engine.run(kWarmup, kMeasure);

        // Digest collection must actually have happened — an
        // accidental 0 == 0 comparison would verify nothing.
        EXPECT_NE(trace.retireDigest, 0u);
        EXPECT_NE(trace.accessDigest, 0u);

        std::vector<CheckFailure> failures;
        checkTraceSanity(trace, workloadKey(w),
                         cfg.l1i.sizeBytes / blockBytes, failures);
        checkCycleSanity(cycle, false, failures);
        checkCrossEngine(trace, cycle,
                         kind == PrefetcherKind::None, failures);
        for (const CheckFailure &f : failures) {
            ADD_FAILURE() << workloadKey(w) << "/"
                          << prefetcherName(kind) << ": "
                          << f.invariant << ": " << f.detail;
        }
    }
}

TEST_P(PresetDifferential, MulticoreTraceIsThreadCountInvariant)
{
    const ServerWorkload w = GetParam();
    SystemConfig serial;
    serial.threads = 1;
    SystemConfig pooled;
    pooled.threads = 4;

    const MulticoreTraceResult a = runMulticoreTrace(
        w, PrefetcherKind::Pif, 4, kWarmup / 2, kMeasure / 2, serial);
    const MulticoreTraceResult b = runMulticoreTrace(
        w, PrefetcherKind::Pif, 4, kWarmup / 2, kMeasure / 2, pooled);

    ASSERT_EQ(a.perCore.size(), b.perCore.size());
    std::vector<CheckFailure> failures;
    for (std::size_t core = 0; core < a.perCore.size(); ++core)
        checkTraceIdentical(a.perCore[core], b.perCore[core],
                            "thread-invariance", failures);
    for (const CheckFailure &f : failures)
        ADD_FAILURE() << workloadKey(w) << ": " << f.detail;
}

TEST_P(PresetDifferential, MulticoreCycleIsThreadCountInvariant)
{
    const ServerWorkload w = GetParam();
    SystemConfig serial;
    serial.threads = 1;
    SystemConfig pooled;
    pooled.threads = 4;

    const MulticoreCycleResult a = runMulticoreCycle(
        w, PrefetcherKind::Pif, 2, kWarmup / 2, kMeasure / 2, serial);
    const MulticoreCycleResult b = runMulticoreCycle(
        w, PrefetcherKind::Pif, 2, kWarmup / 2, kMeasure / 2, pooled);

    ASSERT_EQ(a.perCore.size(), b.perCore.size());
    for (std::size_t core = 0; core < a.perCore.size(); ++core) {
        EXPECT_EQ(a.perCore[core].cycles, b.perCore[core].cycles)
            << workloadKey(w) << " core " << core;
        EXPECT_EQ(a.perCore[core].demandMisses,
                  b.perCore[core].demandMisses)
            << workloadKey(w) << " core " << core;
        EXPECT_DOUBLE_EQ(a.perCore[core].uipc, b.perCore[core].uipc)
            << workloadKey(w) << " core " << core;
    }
}

TEST_P(PresetDifferential, WindowedOraclesAgreeAcrossEngines)
{
    const ServerWorkload w = GetParam();
    const Program prog = buildWorkloadProgram(w);
    for (const PrefetcherKind kind :
         {PrefetcherKind::None, PrefetcherKind::Pif})
        runWindowedOracles(prog, executorConfigFor(w), kind,
                           workloadKey(w));
}

TEST(ZooDifferential, WindowedOraclesAgreeOnZooSpecs)
{
    const std::vector<WorkloadZooEntry> zoo = workloadZoo();
    ASSERT_GE(zoo.size(), 2u);
    // The first two specs in key order; the fuzz harness sweeps the
    // rest.
    for (std::size_t i = 0; i < 2; ++i) {
        std::string err;
        auto spec = loadWorkloadSpecFile(zoo[i].path, &err);
        ASSERT_TRUE(spec.has_value()) << zoo[i].key << ": " << err;
        const WorkloadRef ref = workloadRefFromSpec(std::move(*spec));
        const Program prog = ref.buildProgram();
        const ExecutorConfig exec = ref.executorConfig();
        for (const PrefetcherKind kind :
             {PrefetcherKind::None, PrefetcherKind::Pif})
            runWindowedOracles(prog, exec, kind, zoo[i].key);
    }
}

TEST(WindowedFault, PlantedMiscountIsLocalizedToItsWindow)
{
    // The injected skew hits the cycle store's second accesses sample:
    // with the oracle's 1024-instruction stride that is instruction
    // window 2048, and the failure must name exactly that window (the
    // whole-run totals stay equal, so no other oracle may trip).
    Scenario sc = scenarioFromSeed(1);
    sc.warmup = 2'000;
    sc.measure = 8'000;
    const std::vector<CheckFailure> failures =
        runScenario(sc, FaultInjection::WindowMiscount);
    ASSERT_EQ(failures.size(), 1u);
    EXPECT_EQ(failures[0].invariant, "windowed-counter-equality");
    EXPECT_NE(
        failures[0].detail.find("accesses diverges at instr 2048"),
        std::string::npos)
        << failures[0].detail;
}

INSTANTIATE_TEST_SUITE_P(
    AllSix, PresetDifferential,
    ::testing::ValuesIn(allServerWorkloads()),
    [](const ::testing::TestParamInfo<ServerWorkload> &info) {
        std::string n = workloadGroup(info.param) +
                        workloadName(info.param);
        n.erase(std::remove(n.begin(), n.end(), ' '), n.end());
        return n;
    });

} // namespace
} // namespace pifetch
