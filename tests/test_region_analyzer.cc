/**
 * @file
 * Region analyzer tests (Figure 3 / Figure 8-left machinery).
 */

#include <gtest/gtest.h>

#include "pif/region_analyzer.hh"

namespace pifetch {
namespace {

Addr
pcOf(Addr block, unsigned i = 0)
{
    return blockBase(block) + i * instrBytes;
}

TEST(RegionAnalyzer, SingleBlockRegionHasDensityOne)
{
    RegionAnalyzer a(4, 27);
    a.observe(pcOf(100));
    a.observe(pcOf(1000));  // closes the first region
    a.finish();
    EXPECT_EQ(a.regions(), 2u);
    EXPECT_DOUBLE_EQ(a.density().weightAt(0), 2.0);  // range "1"
}

TEST(RegionAnalyzer, DensityCountsUniqueBlocks)
{
    RegionAnalyzer a(4, 27);
    a.observe(pcOf(100));
    a.observe(pcOf(101));
    a.observe(pcOf(100, 5));  // revisit: not double counted
    a.observe(pcOf(102));
    a.finish();
    EXPECT_EQ(a.regions(), 1u);
    EXPECT_DOUBLE_EQ(a.density().weightAt(2), 1.0);  // range "3-4"
}

TEST(RegionAnalyzer, GroupsCountContiguousRuns)
{
    RegionAnalyzer a(4, 27);
    a.observe(pcOf(100));
    a.observe(pcOf(101));
    a.observe(pcOf(104));  // gap at 102-103: second group
    a.finish();
    EXPECT_DOUBLE_EQ(a.groups().weightAt(1), 1.0);  // range "2"
}

TEST(RegionAnalyzer, OffsetsExcludeTrigger)
{
    RegionAnalyzer a(4, 12);
    a.observe(pcOf(100));
    a.observe(pcOf(101));
    a.observe(pcOf(99));
    a.finish();
    EXPECT_DOUBLE_EQ(a.offsets().weightAt(1), 1.0);
    EXPECT_DOUBLE_EQ(a.offsets().weightAt(-1), 1.0);
    EXPECT_DOUBLE_EQ(a.offsets().weightAt(2), 0.0);
    EXPECT_DOUBLE_EQ(a.offsets().totalWeight(), 2.0);
}

TEST(RegionAnalyzer, OutOfWindowAccessOpensNewRegion)
{
    RegionAnalyzer a(2, 5);
    a.observe(pcOf(100));
    a.observe(pcOf(106));  // +6: outside (2,5) window
    a.finish();
    EXPECT_EQ(a.regions(), 2u);
}

TEST(RegionAnalyzer, SameBlockCollapse)
{
    RegionAnalyzer a(2, 5);
    a.observe(pcOf(100, 0));
    a.observe(pcOf(100, 1));
    a.observe(pcOf(100, 2));
    a.finish();
    EXPECT_EQ(a.regions(), 1u);
    EXPECT_DOUBLE_EQ(a.density().weightAt(0), 1.0);
}

TEST(RegionAnalyzer, FinishIsIdempotent)
{
    RegionAnalyzer a(2, 5);
    a.observe(pcOf(1));
    a.finish();
    a.finish();
    EXPECT_EQ(a.regions(), 1u);
}

TEST(RegionAnalyzer, LoopWithinRegionStaysOneRegion)
{
    RegionAnalyzer a(2, 5);
    for (int i = 0; i < 100; ++i) {
        a.observe(pcOf(100));
        a.observe(pcOf(101));
    }
    a.finish();
    EXPECT_EQ(a.regions(), 1u);
    EXPECT_DOUBLE_EQ(a.density().weightAt(1), 1.0);  // density 2
}

} // namespace
} // namespace pifetch
