/**
 * @file
 * Single-header, gtest-compatible mini test framework.
 *
 * Offline fallback for GoogleTest: when neither a system GTest nor
 * FetchContent is available, the build points `#include
 * <gtest/gtest.h>` at this header (via tests/minitest/gtest/gtest.h)
 * and links tests/minitest_main.cc for the auto-main.
 *
 * Implements the subset of the GoogleTest API this repository's
 * suites use:
 *   - TEST / TEST_F / TEST_P + INSTANTIATE_TEST_SUITE_P
 *   - ::testing::Values / ValuesIn / Combine / TestParamInfo
 *   - EXPECT_/ASSERT_ {EQ,NE,LT,LE,GT,GE,TRUE,FALSE}, EXPECT_NEAR,
 *     EXPECT_DOUBLE_EQ, FAIL(), streamed messages (`<< "context"`)
 *   - EXPECT_DEATH / EXPECT_EXIT with ::testing::ExitedWithCode
 *     (fork-based, POSIX only)
 *   - ::testing::TempDir(), --gtest_filter=, --gtest_list_tests
 *
 * Notable simplifications vs. real GoogleTest: tests run in
 * registration order (no shuffle), there is no XML output, and
 * value-parameterized instantiation is expanded lazily at
 * RUN_ALL_TESTS() time, so TEST_P/INSTANTIATE ordering within a
 * translation unit does not matter.
 */

#pragma once

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <ostream>
#include <regex>
#include <sstream>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

namespace testing {

class Test;

/** Streamed user message attached to a failing assertion. */
class Message
{
  public:
    template <typename T>
    Message &
    operator<<(const T &value)
    {
        oss_ << value;
        return *this;
    }

    std::string str() const { return oss_.str(); }

  private:
    std::ostringstream oss_;
};

namespace internal {

/** One runnable, fully-instantiated test. */
struct TestCase {
    std::string suite;
    std::string name;
    std::function<void()> run;
};

/** Global registry + per-run state (header-only singleton). */
struct Runtime {
    std::vector<TestCase> tests;
    std::vector<std::function<void()>> deferredInstantiations;
    std::string filter = "*";
    bool listOnly = false;
    int failuresInCurrentTest = 0;
    /** Active SCOPED_TRACE messages, innermost last. */
    std::vector<std::string> traceStack;

    static Runtime &
    get()
    {
        static Runtime r;
        return r;
    }
};

inline void
registerTest(std::string suite, std::string name, std::function<void()> run)
{
    Runtime::get().tests.push_back(
        {std::move(suite), std::move(name), std::move(run)});
}

/** Reports a failure when assigned a Message (gtest's return-void trick). */
class AssertHelper
{
  public:
    AssertHelper(const char *file, int line, std::string summary)
        : file_(file), line_(line), summary_(std::move(summary))
    {
    }

    void
    operator=(const Message &msg) const
    {
        std::fprintf(stderr, "%s:%d: Failure\n%s\n", file_, line_,
                     summary_.c_str());
        const std::string text = msg.str();
        if (!text.empty())
            std::fprintf(stderr, "%s\n", text.c_str());
        for (auto it = Runtime::get().traceStack.rbegin();
             it != Runtime::get().traceStack.rend(); ++it)
            std::fprintf(stderr, "Trace: %s\n", it->c_str());
        ++Runtime::get().failuresInCurrentTest;
    }

  private:
    const char *file_;
    int line_;
    std::string summary_;
};

// ---------------------------------------------------------------- printing

template <typename T, typename = void>
struct IsStreamable : std::false_type {};

template <typename T>
struct IsStreamable<T, std::void_t<decltype(std::declval<std::ostream &>()
                                            << std::declval<const T &>())>>
    : std::true_type {};

template <typename T>
std::string
printValue(const T &v)
{
    if constexpr (std::is_same_v<T, bool>) {
        return v ? "true" : "false";
    } else if constexpr (IsStreamable<T>::value) {
        std::ostringstream oss;
        oss << v;
        return oss.str();
    } else if constexpr (std::is_enum_v<T>) {
        std::ostringstream oss;
        oss << static_cast<std::underlying_type_t<T>>(v);
        return oss.str();
    } else {
        return "<unprintable>";
    }
}

// ------------------------------------------------------------- comparisons

/** Outcome of one comparison; carries the failure text when !ok. */
struct CmpResult {
    bool ok = true;
    std::string message;
    explicit operator bool() const { return ok; }
};

// The comparison templates apply the raw operator to user expressions of
// possibly mixed signedness, exactly as GoogleTest's CmpHelper* do.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wsign-compare"

#define MINITEST_DEFINE_CMP_(cname, op)                                       \
    template <typename A, typename B>                                         \
    CmpResult cmp_##cname(const A &a, const B &b, const char *ea,             \
                          const char *eb)                                     \
    {                                                                         \
        if (a op b)                                                           \
            return {};                                                        \
        CmpResult r;                                                          \
        r.ok = false;                                                         \
        r.message = std::string("Expected: (") + ea + ") " #op " (" + eb +    \
                    "), actual: " + printValue(a) + " vs " + printValue(b);   \
        return r;                                                             \
    }

MINITEST_DEFINE_CMP_(eq, ==)
MINITEST_DEFINE_CMP_(ne, !=)
MINITEST_DEFINE_CMP_(lt, <)
MINITEST_DEFINE_CMP_(le, <=)
MINITEST_DEFINE_CMP_(gt, >)
MINITEST_DEFINE_CMP_(ge, >=)

#pragma GCC diagnostic pop

#undef MINITEST_DEFINE_CMP_

inline CmpResult
cmpNear(double a, double b, double tol, const char *ea, const char *eb)
{
    if (std::fabs(a - b) <= tol)
        return {};
    CmpResult r;
    r.ok = false;
    r.message = std::string("The difference between ") + ea + " and " + eb +
                " is " + printValue(std::fabs(a - b)) + ", which exceeds " +
                printValue(tol);
    return r;
}

/** Sign-magnitude double bits mapped to a monotonic unsigned scale. */
inline std::uint64_t
doubleToBiased(double d)
{
    std::uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    const std::uint64_t sign = std::uint64_t{1} << 63;
    return (bits & sign) ? ~bits + 1 : bits | sign;
}

inline CmpResult
cmpDoubleEq(double a, double b, const char *ea, const char *eb)
{
    bool ok;
    if (std::isnan(a) || std::isnan(b)) {
        ok = false;
    } else {
        // 4-ULP tolerance, matching GoogleTest's AlmostEquals.
        const std::uint64_t ba = doubleToBiased(a);
        const std::uint64_t bb = doubleToBiased(b);
        ok = (ba > bb ? ba - bb : bb - ba) <= 4;
    }
    if (ok)
        return {};
    CmpResult r;
    r.ok = false;
    r.message = std::string("Expected: (") + ea + ") == (" + eb +
                ") within 4 ULPs, actual: " + printValue(a) + " vs " +
                printValue(b);
    return r;
}

// ------------------------------------------------------------- death tests

struct DeathOutcome {
    int status = 0;            ///< raw waitpid status
    std::string stderrOutput;  ///< everything the child wrote to stderr
};

template <typename Fn>
DeathOutcome
runDeathChild(Fn &&fn)
{
    DeathOutcome out;
    int fds[2];
    if (pipe(fds) != 0) {
        std::perror("minitest: pipe");
        std::abort();
    }
    std::fflush(nullptr);
    const pid_t pid = fork();
    if (pid == 0) {
        dup2(fds[1], 2);
        close(fds[0]);
        close(fds[1]);
        fn();
        _exit(0);  // statement returned: the child did not die
    }
    close(fds[1]);
    char buf[4096];
    ssize_t n;
    while ((n = read(fds[0], buf, sizeof(buf))) > 0)
        out.stderrOutput.append(buf, static_cast<std::size_t>(n));
    close(fds[0]);
    waitpid(pid, &out.status, 0);
    return out;
}

inline bool
stderrMatches(const DeathOutcome &out, const char *pattern)
{
    return std::regex_search(out.stderrOutput, std::regex(pattern));
}

inline CmpResult
deathFailure(const char *what, const DeathOutcome &out, const char *pattern)
{
    CmpResult r;
    r.ok = false;
    r.message = std::string(what) + " (pattern \"" + pattern +
                "\"); child stderr:\n" + out.stderrOutput;
    return r;
}

template <typename Fn>
CmpResult
checkDeath(Fn &&fn, const char *pattern)
{
    const DeathOutcome out = runDeathChild(std::forward<Fn>(fn));
    const bool died =
        !(WIFEXITED(out.status) && WEXITSTATUS(out.status) == 0);
    if (!died)
        return deathFailure("Expected statement to die, but it returned",
                            out, pattern);
    if (!stderrMatches(out, pattern))
        return deathFailure("Death message mismatch", out, pattern);
    return {};
}

template <typename Fn, typename Pred>
CmpResult
checkExit(Fn &&fn, Pred pred, const char *pattern)
{
    const DeathOutcome out = runDeathChild(std::forward<Fn>(fn));
    if (!pred(out.status))
        return deathFailure("Exit predicate not satisfied", out, pattern);
    if (!stderrMatches(out, pattern))
        return deathFailure("Exit message mismatch", out, pattern);
    return {};
}

// ------------------------------------------------------ filter + main loop

/** fnmatch-style glob: '*' any run, '?' any one char. */
inline bool
globMatch(const char *pat, const char *str)
{
    if (*pat == '\0')
        return *str == '\0';
    if (*pat == '*')
        return globMatch(pat + 1, str) ||
               (*str != '\0' && globMatch(pat, str + 1));
    if (*str != '\0' && (*pat == '?' || *pat == *str))
        return globMatch(pat + 1, str + 1);
    return false;
}

inline bool
anyPatternMatches(const std::string &patterns, const std::string &name)
{
    std::size_t begin = 0;
    while (begin <= patterns.size()) {
        std::size_t end = patterns.find(':', begin);
        if (end == std::string::npos)
            end = patterns.size();
        const std::string pat = patterns.substr(begin, end - begin);
        if (!pat.empty() && globMatch(pat.c_str(), name.c_str()))
            return true;
        begin = end + 1;
    }
    return false;
}

/** gtest filter semantics: POSITIVE[-NEGATIVE], ':'-separated globs. */
inline bool
filterAccepts(const std::string &name)
{
    const std::string &f = Runtime::get().filter;
    const std::size_t dash = f.find('-');
    std::string pos = dash == std::string::npos ? f : f.substr(0, dash);
    const std::string neg =
        dash == std::string::npos ? std::string() : f.substr(dash + 1);
    if (pos.empty())
        pos = "*";
    if (!anyPatternMatches(pos, name))
        return false;
    return neg.empty() || !anyPatternMatches(neg, name);
}

inline int
runAllTests()
{
    Runtime &rt = Runtime::get();
    for (const auto &expand : rt.deferredInstantiations)
        expand();
    rt.deferredInstantiations.clear();

    if (rt.listOnly) {
        std::string lastSuite;
        for (const TestCase &t : rt.tests) {
            if (t.suite != lastSuite) {
                std::printf("%s.\n", t.suite.c_str());
                lastSuite = t.suite;
            }
            std::printf("  %s\n", t.name.c_str());
        }
        return 0;
    }

    int ran = 0;
    std::vector<std::string> failed;
    for (const TestCase &t : rt.tests) {
        const std::string full = t.suite + "." + t.name;
        if (!filterAccepts(full))
            continue;
        std::printf("[ RUN      ] %s\n", full.c_str());
        std::fflush(stdout);
        rt.failuresInCurrentTest = 0;
        t.run();
        ++ran;
        if (rt.failuresInCurrentTest > 0) {
            failed.push_back(full);
            std::printf("[  FAILED  ] %s\n", full.c_str());
        } else {
            std::printf("[       OK ] %s\n", full.c_str());
        }
    }

    std::printf("[==========] %d test(s) ran.\n", ran);
    if (failed.empty()) {
        std::printf("[  PASSED  ] %d test(s).\n", ran);
        return 0;
    }
    std::printf("[  FAILED  ] %zu test(s):\n", failed.size());
    for (const std::string &name : failed)
        std::printf("[  FAILED  ] %s\n", name.c_str());
    return 1;
}

// ------------------------------------------------- fixtures + registration

template <typename T> void runOneTest();

template <typename T>
bool
registerSimpleTest(const char *suite, const char *name)
{
    registerTest(suite, name, []() { runOneTest<T>(); });
    return true;
}

/** Per-suite list of TEST_P bodies awaiting instantiation. */
template <typename Suite>
struct ParamTestList {
    using Fn = std::function<void(const typename Suite::ParamType &)>;
    std::vector<std::pair<std::string, Fn>> tests;

    static ParamTestList &
    get()
    {
        static ParamTestList l;
        return l;
    }
};

template <typename Suite>
bool
addParamTest(const char *name,
             typename ParamTestList<Suite>::Fn fn)
{
    ParamTestList<Suite>::get().tests.emplace_back(name, std::move(fn));
    return true;
}

struct DefaultParamName {
    template <typename T>
    std::string
    operator()(const T &info) const
    {
        return std::to_string(info.index);
    }
};

} // namespace internal

// --------------------------------------------------------------- fixtures

/** Base fixture, as in GoogleTest. */
class Test
{
  public:
    virtual ~Test() = default;
    virtual void SetUp() {}
    virtual void TearDown() {}
};

template <typename T>
class TestWithParam : public Test
{
  public:
    using ParamType = T;
    const ParamType &GetParam() const { return *minitestParam_; }

    /** Internal: wired up by the TEST_P runner before SetUp(). */
    void minitestSetParam(const ParamType *p) { minitestParam_ = p; }

  private:
    const ParamType *minitestParam_ = nullptr;
};

namespace internal {

// SetUp/TearDown are conventionally protected in fixtures; calling
// through the Test base (where they are public virtuals) keeps the
// call legal while still dispatching to the override.
template <typename T>
void
runFixture(T &t)
{
    Test &base = t;
    base.SetUp();
    t.TestBody();
    base.TearDown();
}

template <typename T>
void
runOneTest()
{
    T t;
    runFixture(t);
}

} // namespace internal

template <typename T>
struct TestParamInfo {
    TestParamInfo(const T &p, std::size_t i) : param(p), index(i) {}
    T param;
    std::size_t index;
};

// ------------------------------------------------------- param generators

template <typename... Ts>
auto
Values(Ts... vs)
{
    using T = typename std::common_type<Ts...>::type;
    return std::vector<T>{static_cast<T>(vs)...};
}

template <typename C>
auto
ValuesIn(const C &container)
{
    using T = typename std::decay<decltype(*std::begin(container))>::type;
    return std::vector<T>(std::begin(container), std::end(container));
}

namespace internal {

inline std::vector<std::tuple<>>
combineImpl()
{
    return {std::tuple<>()};
}

template <typename V, typename... Rest>
std::vector<std::tuple<V, Rest...>>
combineImpl(const std::vector<V> &first, const std::vector<Rest> &...rest)
{
    const auto tails = combineImpl(rest...);
    std::vector<std::tuple<V, Rest...>> out;
    out.reserve(first.size() * tails.size());
    for (const V &v : first)
        for (const auto &t : tails)
            out.push_back(std::tuple_cat(std::make_tuple(v), t));
    return out;
}

template <typename Suite, typename Gen, typename Namer>
bool
instantiateParam(const char *prefix, const char *suiteName, Gen gen,
                 Namer namer)
{
    Runtime::get().deferredInstantiations.push_back([=]() {
        using Param = typename Suite::ParamType;
        const std::vector<Param> params(gen.begin(), gen.end());
        for (std::size_t i = 0; i < params.size(); ++i) {
            const std::string label =
                namer(TestParamInfo<Param>(params[i], i));
            for (const auto &t : ParamTestList<Suite>::get().tests) {
                const Param param = params[i];
                registerTest(
                    std::string(prefix) + "/" + suiteName,
                    t.first + "/" + label, [fn = t.second, param]() {
                        fn(param);
                    });
            }
        }
    });
    return true;
}

} // namespace internal

template <typename... Vs>
auto
Combine(const std::vector<Vs> &...generators)
{
    return internal::combineImpl(generators...);
}

// ------------------------------------------------------------ environment

/** Temp directory with trailing slash, as GoogleTest returns it. */
inline std::string
TempDir()
{
    const char *t = std::getenv("TMPDIR");
    std::string dir = (t != nullptr && *t != '\0') ? t : "/tmp";
    if (dir.back() != '/')
        dir += '/';
    return dir;
}

/** Predicate for EXPECT_EXIT: process exited normally with @p code. */
class ExitedWithCode
{
  public:
    explicit ExitedWithCode(int code) : code_(code) {}

    bool
    operator()(int status) const
    {
        return WIFEXITED(status) && WEXITSTATUS(status) == code_;
    }

  private:
    int code_;
};

inline void
InitGoogleTest(int *argc, char **argv)
{
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
        const std::string a = argv[i];
        if (a.rfind("--gtest_filter=", 0) == 0)
            internal::Runtime::get().filter = a.substr(15);
        else if (a == "--gtest_list_tests")
            internal::Runtime::get().listOnly = true;
        else if (a.rfind("--gtest_", 0) == 0)
            ;  // accepted and ignored (color, shuffle, ...)
        else
            argv[out++] = argv[i];
    }
    argv[out] = nullptr;  // keep the argv[argc] == nullptr guarantee
    *argc = out;
}

inline void
InitGoogleTest()
{
}

} // namespace testing

// -------------------------------------------------------------- the macros

namespace testing {
namespace internal {

/** RAII frame backing SCOPED_TRACE (stack dumped on each failure). */
class ScopedTraceFrame
{
  public:
    template <typename T>
    ScopedTraceFrame(const char *file, int line, const T &message)
    {
        std::ostringstream oss;
        oss << file << ':' << line << ": " << message;
        Runtime::get().traceStack.push_back(oss.str());
    }

    ~ScopedTraceFrame() { Runtime::get().traceStack.pop_back(); }

    ScopedTraceFrame(const ScopedTraceFrame &) = delete;
    ScopedTraceFrame &operator=(const ScopedTraceFrame &) = delete;
};

} // namespace internal
} // namespace testing

#define MINITEST_TRACE_CAT2_(a, b) a##b
#define MINITEST_TRACE_CAT_(a, b) MINITEST_TRACE_CAT2_(a, b)
#define SCOPED_TRACE(message)                                                 \
    ::testing::internal::ScopedTraceFrame MINITEST_TRACE_CAT_(                \
        minitest_scoped_trace_, __LINE__)(__FILE__, __LINE__, (message))

#define MINITEST_CLASS_NAME_(suite, name) suite##_##name##_MiniTest

#define TEST(suite, name)                                                     \
    class MINITEST_CLASS_NAME_(suite, name) : public ::testing::Test          \
    {                                                                         \
      public:                                                                 \
        void TestBody();                                                      \
    };                                                                        \
    static const bool minitest_reg_##suite##_##name =                         \
        ::testing::internal::registerSimpleTest<MINITEST_CLASS_NAME_(         \
            suite, name)>(#suite, #name);                                     \
    void MINITEST_CLASS_NAME_(suite, name)::TestBody()

#define TEST_F(fixture, name)                                                 \
    class MINITEST_CLASS_NAME_(fixture, name) : public fixture                \
    {                                                                         \
      public:                                                                 \
        void TestBody();                                                      \
    };                                                                        \
    static const bool minitest_reg_##fixture##_##name =                       \
        ::testing::internal::registerSimpleTest<MINITEST_CLASS_NAME_(         \
            fixture, name)>(#fixture, #name);                                 \
    void MINITEST_CLASS_NAME_(fixture, name)::TestBody()

#define TEST_P(suite, name)                                                   \
    class MINITEST_CLASS_NAME_(suite, name) : public suite                    \
    {                                                                         \
      public:                                                                 \
        void TestBody();                                                      \
    };                                                                        \
    static const bool minitest_preg_##suite##_##name =                        \
        ::testing::internal::addParamTest<suite>(                             \
            #name, [](const suite::ParamType &p) {                            \
                MINITEST_CLASS_NAME_(suite, name) t;                          \
                t.minitestSetParam(&p);                                       \
                ::testing::internal::runFixture(t);                           \
            });                                                               \
    void MINITEST_CLASS_NAME_(suite, name)::TestBody()

#define MINITEST_INST_3_(prefix, suite, gen)                                  \
    static const bool minitest_inst_##prefix##_##suite =                      \
        ::testing::internal::instantiateParam<suite>(                         \
            #prefix, #suite, (gen), ::testing::internal::DefaultParamName())
#define MINITEST_INST_4_(prefix, suite, gen, namer)                           \
    static const bool minitest_inst_##prefix##_##suite =                      \
        ::testing::internal::instantiateParam<suite>(#prefix, #suite, (gen),  \
                                                     (namer))
#define MINITEST_INST_PICK_(a, b, c, d, NAME, ...) NAME
#define INSTANTIATE_TEST_SUITE_P(...)                                         \
    MINITEST_INST_PICK_(__VA_ARGS__, MINITEST_INST_4_, MINITEST_INST_3_,      \
                        )(__VA_ARGS__)

#define MINITEST_AMBIGUOUS_ELSE_BLOCKER_ switch (0) case 0: default:

#define MINITEST_NONFATAL_(summary)                                           \
    ::testing::internal::AssertHelper(__FILE__, __LINE__, (summary)) =        \
        ::testing::Message()

#define MINITEST_BOOL_(cond, summary, ACTION)                                 \
    MINITEST_AMBIGUOUS_ELSE_BLOCKER_                                          \
    if (cond)                                                                 \
        ;                                                                     \
    else                                                                      \
        ACTION MINITEST_NONFATAL_(summary)

#define EXPECT_TRUE(...)                                                      \
    MINITEST_BOOL_((__VA_ARGS__), "Expected: " #__VA_ARGS__ " is true", )
#define EXPECT_FALSE(...)                                                     \
    MINITEST_BOOL_(!(__VA_ARGS__), "Expected: " #__VA_ARGS__ " is false", )
#define ASSERT_TRUE(...)                                                      \
    MINITEST_BOOL_((__VA_ARGS__), "Expected: " #__VA_ARGS__ " is true",       \
                   return)
#define ASSERT_FALSE(...)                                                     \
    MINITEST_BOOL_(!(__VA_ARGS__), "Expected: " #__VA_ARGS__ " is false",     \
                   return)

#define MINITEST_CMP_(cname, a, b, ACTION)                                    \
    MINITEST_AMBIGUOUS_ELSE_BLOCKER_                                          \
    if (::testing::internal::CmpResult minitest_res_ =                        \
            ::testing::internal::cmp_##cname((a), (b), #a, #b))               \
        ;                                                                     \
    else                                                                      \
        ACTION ::testing::internal::AssertHelper(                             \
            __FILE__, __LINE__, minitest_res_.message) = ::testing::Message()

#define EXPECT_EQ(a, b) MINITEST_CMP_(eq, a, b, )
#define EXPECT_NE(a, b) MINITEST_CMP_(ne, a, b, )
#define EXPECT_LT(a, b) MINITEST_CMP_(lt, a, b, )
#define EXPECT_LE(a, b) MINITEST_CMP_(le, a, b, )
#define EXPECT_GT(a, b) MINITEST_CMP_(gt, a, b, )
#define EXPECT_GE(a, b) MINITEST_CMP_(ge, a, b, )
#define ASSERT_EQ(a, b) MINITEST_CMP_(eq, a, b, return)
#define ASSERT_NE(a, b) MINITEST_CMP_(ne, a, b, return)
#define ASSERT_LT(a, b) MINITEST_CMP_(lt, a, b, return)
#define ASSERT_LE(a, b) MINITEST_CMP_(le, a, b, return)
#define ASSERT_GT(a, b) MINITEST_CMP_(gt, a, b, return)
#define ASSERT_GE(a, b) MINITEST_CMP_(ge, a, b, return)

#define MINITEST_CMP_CALL_(call, ACTION)                                      \
    MINITEST_AMBIGUOUS_ELSE_BLOCKER_                                          \
    if (::testing::internal::CmpResult minitest_res_ =                        \
            ::testing::internal::call)                                        \
        ;                                                                     \
    else                                                                      \
        ACTION ::testing::internal::AssertHelper(                             \
            __FILE__, __LINE__, minitest_res_.message) = ::testing::Message()

#define EXPECT_NEAR(a, b, tol)                                                \
    MINITEST_CMP_CALL_(cmpNear((a), (b), (tol), #a, #b), )
#define ASSERT_NEAR(a, b, tol)                                                \
    MINITEST_CMP_CALL_(cmpNear((a), (b), (tol), #a, #b), return)
#define EXPECT_DOUBLE_EQ(a, b)                                                \
    MINITEST_CMP_CALL_(cmpDoubleEq((a), (b), #a, #b), )
#define ASSERT_DOUBLE_EQ(a, b)                                                \
    MINITEST_CMP_CALL_(cmpDoubleEq((a), (b), #a, #b), return)

#define EXPECT_DEATH(stmt, pattern)                                           \
    MINITEST_CMP_CALL_(checkDeath([&]() { stmt; }, (pattern)), )
#define ASSERT_DEATH(stmt, pattern)                                           \
    MINITEST_CMP_CALL_(checkDeath([&]() { stmt; }, (pattern)), return)
#define EXPECT_EXIT(stmt, predicate, pattern)                                 \
    MINITEST_CMP_CALL_(checkExit([&]() { stmt; }, (predicate), (pattern)), )

#define FAIL()                                                                \
    return ::testing::internal::AssertHelper(__FILE__, __LINE__, "Failed") =  \
               ::testing::Message()
#define ADD_FAILURE()                                                         \
    ::testing::internal::AssertHelper(__FILE__, __LINE__, "Failed") =         \
        ::testing::Message()
#define SUCCEED() static_cast<void>(::testing::Message())

#define RUN_ALL_TESTS() ::testing::internal::runAllTests()
