/**
 * @file
 * Shared-storage PIF tests.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "pif/shared_pif.hh"
#include "sim/multicore.hh"

namespace pifetch {
namespace {

PifConfig
smallPif()
{
    PifConfig cfg;
    cfg.historyRegions = 1024;
    cfg.indexEntries = 256;
    return cfg;
}

void
retireBlocks(Prefetcher &pf, const std::vector<Addr> &blocks)
{
    for (Addr b : blocks) {
        RetiredInstr r;
        r.pc = blockBase(b);
        pf.onRetire(r, true);
    }
}

FetchInfo
fetchOf(Addr block)
{
    FetchInfo f;
    f.block = block;
    f.pc = blockBase(block);
    f.correctPath = true;
    return f;
}

TEST(SharedPif, CrossCoreStreamReplay)
{
    auto storage = std::make_shared<SharedPifStorage>(smallPif());
    SharedPifPrefetcher core_a(storage);
    SharedPifPrefetcher core_b(storage);

    // Core A records a stream...
    retireBlocks(core_a, {1000, 1001, 2000, 3000});
    retireBlocks(core_a, {9000});

    // ...core B, which has never executed it, replays it on the
    // trigger recurrence. This is exactly what dedicated per-core
    // storage cannot do.
    core_b.onFetchAccess(fetchOf(1000));
    std::vector<Addr> out;
    core_b.drainRequests(out, 64);
    EXPECT_NE(std::find(out.begin(), out.end(), 2000u), out.end());
    EXPECT_NE(std::find(out.begin(), out.end(), 3000u), out.end());
    EXPECT_EQ(core_b.sabAllocations(), 1u);
}

TEST(SharedPif, StorageAggregatesAcrossCores)
{
    auto storage = std::make_shared<SharedPifStorage>(smallPif());
    SharedPifPrefetcher a(storage);
    SharedPifPrefetcher b(storage);
    retireBlocks(a, {100, 5000});
    retireBlocks(b, {900, 7000});
    EXPECT_GE(storage->regionsRecorded(), 2u);
}

TEST(SharedPif, CoverageAccounting)
{
    auto storage = std::make_shared<SharedPifStorage>(smallPif());
    SharedPifPrefetcher pf(storage);
    pf.onFetchAccess(fetchOf(42));
    FetchInfo covered = fetchOf(43);
    covered.hit = true;
    covered.wasPrefetched = true;
    pf.onFetchAccess(covered);
    EXPECT_DOUBLE_EQ(pf.coverage(), 0.5);
}

TEST(SharedPif, ResetKeepsSharedStorage)
{
    auto storage = std::make_shared<SharedPifStorage>(smallPif());
    SharedPifPrefetcher a(storage);
    retireBlocks(a, {100, 5000});
    const std::uint64_t recorded = storage->regionsRecorded();
    a.reset();
    EXPECT_EQ(storage->regionsRecorded(), recorded);
}

TEST(SharedPifStudy, SharedBeatsEqualAggregatePrivate)
{
    // With 4 cores running the same binary, one shared 8K-region pool
    // must outperform four private 2K pools: streams recorded by any
    // core serve all of them.
    const SharedPifStudyResult r = runSharedPifStudy(
        ServerWorkload::OltpDb2, 4, 8 * 1024, 200'000, 300'000);
    EXPECT_GT(r.privateMissRatio, 0.0);
    EXPECT_GT(r.sharedCoverage, r.privateCoverage - 0.02);
    EXPECT_LT(r.sharedMissRatio, r.privateMissRatio * 1.05);
}

} // namespace
} // namespace pifetch
