/**
 * @file
 * Trace format v2 codec tests: exhaustive round-trips, v1 <-> v2
 * equivalence, seeded pack/unpack fuzz, the planted-corruption
 * battery, and the six-preset compression/fidelity acceptance check.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "common/digest.hh"
#include "common/rng.hh"
#include "sim/workloads.hh"
#include "trace/trace_io.hh"
#include "trace/trace_v2.hh"

namespace pifetch {
namespace {

RetiredInstr
makeRecord(Addr pc, InstrKind kind = InstrKind::Plain,
           Addr target = invalidAddr, bool taken = false,
           TrapLevel trap = 0)
{
    RetiredInstr r;
    r.pc = pc;
    r.kind = kind;
    r.target = target;
    r.taken = taken;
    r.trapLevel = trap;
    return r;
}

void
expectSameRecords(const std::vector<RetiredInstr> &got,
                  const std::vector<RetiredInstr> &want)
{
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
        ASSERT_EQ(got[i].pc, want[i].pc) << "record " << i;
        ASSERT_EQ(got[i].target, want[i].target) << "record " << i;
        ASSERT_EQ(got[i].kind, want[i].kind) << "record " << i;
        ASSERT_EQ(got[i].taken, want[i].taken) << "record " << i;
        ASSERT_EQ(got[i].trapLevel, want[i].trapLevel)
            << "record " << i;
    }
}

/** The cross-engine retire-digest fold over a whole stream. */
std::uint64_t
streamRetireDigest(const std::vector<RetiredInstr> &records)
{
    StreamDigest d;
    for (const RetiredInstr &r : records)
        digestRetire(d, r);
    return d.value();
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    return buf.str();
}

void
spit(const std::string &path, const std::string &bytes)
{
    std::ofstream os(path, std::ios::binary);
    os << bytes;
    ASSERT_TRUE(os.good());
}

class TraceV2Test : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        base_ = ::testing::TempDir() + "pifetch_trace_v2_" +
                std::to_string(::getpid());
        pathA_ = base_ + "_a.trace";
        pathB_ = base_ + "_b.trace";
        pathC_ = base_ + "_c.trace";
    }

    void
    TearDown() override
    {
        std::remove(pathA_.c_str());
        std::remove(pathB_.c_str());
        std::remove(pathC_.c_str());
    }

    std::string base_, pathA_, pathB_, pathC_;
};

TEST_F(TraceV2Test, EveryRecordKindRoundTrips)
{
    // Every InstrKind, with and without targets, taken and not,
    // across trap levels — including the pathological Plain-with-
    // target record an arbitrary v1 file could contain.
    std::vector<RetiredInstr> records;
    const InstrKind kinds[] = {
        InstrKind::Plain,     InstrKind::CondBranch, InstrKind::Jump,
        InstrKind::Call,      InstrKind::Return,     InstrKind::TrapEnter,
        InstrKind::TrapReturn};
    Addr pc = 0x1000;
    for (const InstrKind kind : kinds) {
        for (const bool taken : {false, true}) {
            for (const bool has_target : {false, true}) {
                for (const TrapLevel trap : {0, 1, 2}) {
                    records.push_back(makeRecord(
                        pc, kind,
                        has_target ? pc + 0x4444 : invalidAddr, taken,
                        trap));
                    pc += 4;
                }
            }
        }
    }
    ASSERT_TRUE(writeTraceV2(pathA_, records));
    std::vector<RetiredInstr> decoded;
    ASSERT_TRUE(readTraceV2(pathA_, decoded));
    expectSameRecords(decoded, records);
}

TEST_F(TraceV2Test, PcDeltasSpanningEveryVarintLengthRoundTrip)
{
    // Forward and backward pc jumps sized to exercise every zigzag
    // varint length from 1 byte up to the 10-byte maximum (deltas up
    // to 2^62 across the full 64-bit address space).
    std::vector<RetiredInstr> records;
    Addr pc = 0x8000000000000000ull;
    records.push_back(makeRecord(pc));
    for (int bits = 0; bits <= 62; bits += 7) {
        const Addr delta = Addr{1} << bits;
        pc += delta;
        records.push_back(makeRecord(pc, InstrKind::Jump, pc - delta,
                                     true));
        pc -= 2 * delta;
        records.push_back(makeRecord(pc));
    }
    ASSERT_TRUE(writeTraceV2(pathA_, records));
    std::vector<RetiredInstr> decoded;
    ASSERT_TRUE(readTraceV2(pathA_, decoded));
    expectSameRecords(decoded, records);
}

TEST_F(TraceV2Test, EmptySingleAndNonChunkMultipleSizesRoundTrip)
{
    const std::size_t sizes[] = {0,
                                 1,
                                 2,
                                 traceV2ChunkRecords - 1,
                                 traceV2ChunkRecords,
                                 traceV2ChunkRecords + 1,
                                 2 * traceV2ChunkRecords + 777};
    for (const std::size_t count : sizes) {
        std::vector<RetiredInstr> records;
        records.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
            records.push_back(makeRecord(
                0x40000000 + i * 4, static_cast<InstrKind>(i % 7),
                (i % 3 == 0) ? 0x50000000 + i * 8 : invalidAddr,
                i % 2 == 0, static_cast<TrapLevel>(i % 2)));
        }
        ASSERT_TRUE(writeTraceV2(pathA_, records)) << count;
        std::vector<RetiredInstr> decoded;
        ASSERT_TRUE(readTraceV2(pathA_, decoded)) << count;
        expectSameRecords(decoded, records);

        const auto info = traceV2Info(pathA_);
        ASSERT_TRUE(info.has_value()) << count;
        EXPECT_EQ(info->count, count);
        EXPECT_EQ(info->chunks.size(),
                  (count + traceV2ChunkRecords - 1) /
                      traceV2ChunkRecords);
    }
}

TEST_F(TraceV2Test, ChunkIndexSupportsLazyRandomAccess)
{
    std::vector<RetiredInstr> records;
    const std::size_t count = 2 * traceV2ChunkRecords + 100;
    records.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        records.push_back(makeRecord(0x1000 + i * 4,
                                     static_cast<InstrKind>(i % 7),
                                     (i % 5 == 0) ? 0x9000 + i
                                                  : invalidAddr,
                                     i % 2 == 1));
    ASSERT_TRUE(writeTraceV2(pathA_, records));

    TraceV2Reader reader;
    ASSERT_TRUE(reader.open(pathA_)) << reader.error();
    ASSERT_EQ(reader.info().chunks.size(), 3u);

    // Decode the last chunk directly — no pass over chunks 0/1 — and
    // verify records and the derived block/plainCont columns.
    RecordBatch batch;
    ASSERT_TRUE(reader.readChunk(2, batch)) << reader.error();
    const TraceV2ChunkInfo &info = reader.info().chunks[2];
    ASSERT_EQ(batch.size, info.records);
    RecordBatch expect;
    expect.reserve(info.records);
    for (std::uint32_t i = 0; i < info.records; ++i)
        expect.push(records[info.firstRecord + i]);
    for (std::uint32_t i = 0; i < info.records; ++i) {
        ASSERT_EQ(batch.pc[i], expect.pc[i]);
        ASSERT_EQ(batch.target[i], expect.target[i]);
        ASSERT_EQ(batch.kind[i], expect.kind[i]);
        ASSERT_EQ(batch.block[i], expect.block[i]);
        ASSERT_EQ(batch.plainCont[i], expect.plainCont[i]);
    }
    EXPECT_FALSE(reader.readChunk(3, batch));
}

TEST_F(TraceV2Test, V1ToV2ToV1IsByteIdentical)
{
    std::vector<RetiredInstr> records;
    const std::size_t count = traceV2ChunkRecords + 4321;
    records.reserve(count);
    Rng rng(0x51f7);
    Addr pc = 0x7f0000000000ull;
    for (std::size_t i = 0; i < count; ++i) {
        const auto kind = static_cast<InstrKind>(rng.below(7));
        const bool control = kind != InstrKind::Plain;
        records.push_back(makeRecord(
            pc, kind, control ? pc + rng.below(1 << 20) : invalidAddr,
            control && rng.below(2) == 0,
            static_cast<TrapLevel>(rng.below(3))));
        pc += rng.below(2) ? 4 : rng.below(1 << 16);
    }
    ASSERT_TRUE(writeTrace(pathA_, records));

    // pack: stream v1 batches into the v2 writer.
    {
        TraceBatchReader reader;
        ASSERT_TRUE(reader.open(pathA_));
        TraceV2Writer writer;
        ASSERT_TRUE(writer.open(pathB_));
        RecordBatch batch;
        while (reader.next(batch, traceV2ChunkRecords))
            ASSERT_TRUE(writer.addBatch(batch));
        ASSERT_FALSE(reader.failed());
        ASSERT_TRUE(writer.finish()) << writer.error();
        ASSERT_EQ(writer.count(), count);
    }
    // unpack: stream v2 chunks back through the streaming v1 writer.
    {
        TraceV2Reader reader;
        ASSERT_TRUE(reader.open(pathB_)) << reader.error();
        TraceWriter writer;
        ASSERT_TRUE(writer.open(pathC_));
        RecordBatch batch;
        while (reader.next(batch))
            ASSERT_TRUE(writer.addBatch(batch));
        ASSERT_FALSE(reader.failed()) << reader.error();
        ASSERT_TRUE(writer.finish()) << writer.error();
    }
    EXPECT_EQ(slurp(pathA_), slurp(pathC_));

    EXPECT_EQ(probeTraceFile(pathA_), TraceFileFormat::V1);
    EXPECT_EQ(probeTraceFile(pathB_), TraceFileFormat::V2);
    EXPECT_EQ(probeTraceFile(pathC_), TraceFileFormat::V1);
}

TEST_F(TraceV2Test, SeededFuzzPackUnpackIdentityAndDigestStability)
{
    // 200 random workloads: random-walk pcs over the whole address
    // space, every kind, random targets/traps. Each must round-trip
    // exactly, and packing the same records twice must produce
    // byte-identical files with identical per-chunk digests (the
    // encoder is canonical — no hidden nondeterminism).
    Rng rng(0xf0220);
    for (int iter = 0; iter < 200; ++iter) {
        const std::size_t count = rng.below(3000);
        std::vector<RetiredInstr> records;
        records.reserve(count);
        Addr pc = rng.next();
        for (std::size_t i = 0; i < count; ++i) {
            const auto kind = static_cast<InstrKind>(rng.below(7));
            records.push_back(makeRecord(
                pc, kind,
                rng.below(4) == 0 ? invalidAddr : rng.next(),
                rng.below(2) == 0,
                static_cast<TrapLevel>(rng.below(4))));
            switch (rng.below(4)) {
              case 0: pc += 4; break;
              case 1: pc += rng.below(1 << 14); break;
              case 2: pc -= rng.below(1 << 22); break;
              default: pc = rng.next(); break;
            }
        }
        ASSERT_TRUE(writeTraceV2(pathA_, records)) << "iter " << iter;
        ASSERT_TRUE(writeTraceV2(pathB_, records)) << "iter " << iter;
        const std::string bytes = slurp(pathA_);
        ASSERT_EQ(bytes, slurp(pathB_)) << "iter " << iter;

        std::vector<RetiredInstr> decoded;
        ASSERT_TRUE(readTraceV2(pathA_, decoded)) << "iter " << iter;
        expectSameRecords(decoded, records);
        ASSERT_EQ(streamRetireDigest(decoded),
                  streamRetireDigest(records));

        const auto infoA = traceV2Info(pathA_);
        const auto infoB = traceV2Info(pathB_);
        ASSERT_TRUE(infoA && infoB);
        ASSERT_EQ(infoA->chunks.size(), infoB->chunks.size());
        for (std::size_t k = 0; k < infoA->chunks.size(); ++k)
            ASSERT_EQ(infoA->chunks[k].digest, infoB->chunks[k].digest);
    }
}

// ------------------------------------------- planted-corruption battery

/** A two-chunk v2 file the battery can plant faults into. */
class TraceV2CorruptionTest : public TraceV2Test
{
  protected:
    void
    SetUp() override
    {
        TraceV2Test::SetUp();
        records_.reserve(traceV2ChunkRecords + 500);
        for (std::size_t i = 0; i < traceV2ChunkRecords + 500; ++i) {
            records_.push_back(makeRecord(
                0x1000 + i * 4, static_cast<InstrKind>(i % 7),
                (i % 4 == 0) ? 0x2000 + i * 8 : invalidAddr,
                i % 2 == 0, static_cast<TrapLevel>(i % 2)));
        }
        ASSERT_TRUE(writeTraceV2(pathA_, records_));
        pristine_ = slurp(pathA_);
        const auto info = traceV2Info(pathA_);
        ASSERT_TRUE(info.has_value());
        info_ = *info;
    }

    /** Open @p bytes (written to pathB_) expecting a failure whose
     *  message contains @p needle; returns the full error. */
    std::string
    expectOpenError(const std::string &bytes, const std::string &needle)
    {
        spit(pathB_, bytes);
        std::vector<RetiredInstr> decoded{makeRecord(1)};
        std::string err;
        EXPECT_FALSE(readTraceV2(pathB_, decoded, &err));
        // No silent partial read: a failed decode hands back nothing.
        EXPECT_TRUE(decoded.empty());
        EXPECT_NE(err.find(needle), std::string::npos)
            << "error was: " << err;
        return err;
    }

    std::vector<RetiredInstr> records_;
    std::string pristine_;
    TraceV2Info info_;
};

TEST_F(TraceV2CorruptionTest, PlantedFaultsEachFailDistinctly)
{
    // Fault 1: truncated chunk/file — the trailing index no longer
    // fits inside the file.
    std::string truncated = pristine_;
    truncated.resize(info_.indexOffset / 2);
    const std::string err_trunc =
        expectOpenError(truncated, "corrupt index offset");

    // Fault 2: a flipped bit inside a compressed chunk payload. The
    // index (at the end) is intact, so the file opens; the chunk
    // itself must then fail decode — as a malformed section or as a
    // payload digest mismatch, never as silently different records.
    std::string flipped = pristine_;
    const std::size_t payload_mid =
        48 + (info_.chunks[0].payloadBytes / 2);
    flipped[payload_mid] =
        static_cast<char>(flipped[payload_mid] ^ 0x10);
    spit(pathB_, flipped);
    {
        TraceV2Reader reader;
        ASSERT_TRUE(reader.open(pathB_)) << reader.error();
        RecordBatch batch;
        EXPECT_FALSE(reader.next(batch));
        EXPECT_TRUE(reader.failed());
        EXPECT_EQ(batch.size, 0u);
        EXPECT_NE(reader.error().find("chunk 0"), std::string::npos)
            << "error was: " << reader.error();
        EXPECT_NE(reader.error(), err_trunc);
    }

    // Fault 3: bad chunk-index offset in the header.
    std::string bad_index = pristine_;
    const std::uint64_t bogus = pristine_.size() * 2;
    std::memcpy(&bad_index[16], &bogus, sizeof(bogus));
    const std::string err_index =
        expectOpenError(bad_index, "corrupt index offset");
    EXPECT_NE(err_index.find("outside"), std::string::npos);

    // Fault 4: stale v1 magic — a v1 file handed to the v2 reader
    // must say exactly what to do instead of failing generically.
    ASSERT_TRUE(writeTrace(pathC_, records_));
    const std::string err_v1 =
        expectOpenError(slurp(pathC_), "trace v1");
    EXPECT_NE(err_v1.find("pifetch trace pack"), std::string::npos);

    // And a foreign file is "not a pifetch trace", distinct again.
    const std::string err_magic = expectOpenError(
        std::string(64, 'x'), "not a pifetch trace");
    EXPECT_NE(err_magic, err_v1);
}

TEST_F(TraceV2CorruptionTest, IndexAndHeaderTamperingIsDetected)
{
    // Flipped bit inside the trailing index block.
    std::string bad = pristine_;
    bad[info_.indexOffset + 5] =
        static_cast<char>(bad[info_.indexOffset + 5] ^ 0x01);
    expectOpenError(bad, "index");

    // Header count disagreeing with the index totals.
    bad = pristine_;
    const std::uint64_t bogus = records_.size() + 7;
    std::memcpy(&bad[8], &bogus, sizeof(bogus));
    expectOpenError(bad, "promises");

    // Future version.
    bad = pristine_;
    const std::uint32_t future = 9;
    std::memcpy(&bad[4], &future, sizeof(future));
    expectOpenError(bad, "unsupported trace version");

    // Truncated header.
    expectOpenError(pristine_.substr(0, 10), "truncated header");
}

TEST_F(TraceV2CorruptionTest, FuzzedCorruptionNeverCrashesOrLeaks)
{
    // Seeded corruption fuzz mirroring the v1 suite: truncation
    // anywhere, 1..8 random bit flips, or a short stub. The v2
    // contract is stronger than v1's — every payload byte is covered
    // by a chunk digest and the index by its own digest, so any
    // mutation that actually changes bytes must be *rejected*; decode
    // may succeed only when the mutations cancelled out.
    Rng rng(0x7ace2);
    for (int iter = 0; iter < 300; ++iter) {
        std::string mutated = pristine_;
        switch (rng.below(3)) {
          case 0:
            mutated.resize(rng.below(mutated.size() + 1));
            break;
          case 1: {
            const std::uint64_t flips = rng.range(1, 8);
            for (std::uint64_t f = 0; f < flips; ++f) {
                const std::size_t byte = rng.below(mutated.size());
                mutated[byte] = static_cast<char>(
                    mutated[byte] ^ (1u << rng.below(8)));
            }
            break;
          }
          default:
            mutated.resize(rng.below(33));
            break;
        }
        spit(pathB_, mutated);
        std::vector<RetiredInstr> decoded{makeRecord(1)};
        const bool ok = readTraceV2(pathB_, decoded);
        if (ok) {
            EXPECT_EQ(mutated, pristine_) << "iteration " << iter
                << ": corrupted file decoded successfully";
        } else {
            EXPECT_TRUE(decoded.empty()) << "iteration " << iter
                << ": failed read leaked partial state";
        }
    }
}

// -------------------------------------------- six-preset acceptance

TEST_F(TraceV2Test, SixPresetCorpusCompressesFivefoldAndDecodesExactly)
{
    // The ISSUE's acceptance bar: over the whole six-preset server
    // corpus, v2 must be >= 5x smaller than v1 and decode to the
    // bit-identical record stream (checked via field equality and the
    // cross-engine retire-digest fold, the same word encoding the
    // engine oracles compare at any thread count).
    std::uint64_t v1_bytes = 0;
    std::uint64_t v2_bytes = 0;
    for (const ServerWorkload w : allServerWorkloads()) {
        const Program prog = buildWorkloadProgram(w);
        Executor exec(prog, executorConfigFor(w));
        std::vector<RetiredInstr> records;
        records.reserve(50'000);
        exec.run(50'000,
                 [&](const RetiredInstr &r) { records.push_back(r); });

        ASSERT_TRUE(writeTrace(pathA_, records));
        ASSERT_TRUE(writeTraceV2(pathB_, records));
        v1_bytes += slurp(pathA_).size();
        v2_bytes += slurp(pathB_).size();

        std::vector<RetiredInstr> decoded;
        ASSERT_TRUE(readTraceV2(pathB_, decoded)) << workloadKey(w);
        expectSameRecords(decoded, records);
        ASSERT_EQ(streamRetireDigest(decoded),
                  streamRetireDigest(records)) << workloadKey(w);
    }
    EXPECT_GE(v1_bytes, 5 * v2_bytes)
        << "six-preset corpus: v1 " << v1_bytes << " B vs v2 "
        << v2_bytes << " B ("
        << static_cast<double>(v1_bytes) /
               static_cast<double>(v2_bytes)
        << "x)";
}

} // namespace
} // namespace pifetch
