/**
 * @file
 * Batched-vs-scalar differential suite for the SoA replay pipeline.
 *
 * The batched replay loop must be a pure reorganization: at any batch
 * length the engines retire the same instruction stream, observe the
 * same fetch accesses, and record byte-identical event-store rows and
 * windowed counter samples. This suite pins that equivalence on the
 * six server presets and two workload-zoo specs by comparing each
 * engine at the default batch length against the scalar-order (length
 * 1) reference, checks the multicore runners against hand-built
 * scalar per-core engines at 1 and 4 pool threads, locks the
 * streaming SoA trace decoder against readTrace(), and verifies the
 * deprecated observation wrappers compose to the unified API.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <utility>
#include <unistd.h>

#include "check/invariants.hh"
#include "query/event_store.hh"
#include "sim/cycle_engine.hh"
#include "sim/multicore.hh"
#include "sim/trace_engine.hh"
#include "sim/workloads.hh"
#include "trace/trace_io.hh"
#include "trace/workload_spec.hh"

namespace pifetch {
namespace {

constexpr InstCount kWarmup = 20'000;
constexpr InstCount kMeasure = 60'000;

/**
 * Event-store shape for same-engine comparisons: fine counter stride
 * and every slice kind on — unlike the cross-engine oracles, batching
 * must reproduce even the timing-sensitive prefetch rows exactly.
 */
EventStoreOptions
fullRecordingOptions()
{
    EventStoreOptions opts;
    opts.counterWindow = 1'024;
    opts.recordPrefetches = true;
    return opts;
}

/** Every slice and counter column must match byte for byte. */
void
expectStoresIdentical(const EventStore &a, const EventStore &b,
                      const std::string &label)
{
    EXPECT_GT(a.sliceCount(), 0u) << label;
    EXPECT_GT(a.counterCount(), 0u) << label;
    EXPECT_EQ(a.sliceInstr(), b.sliceInstr()) << label;
    EXPECT_EQ(a.slicePc(), b.slicePc()) << label;
    EXPECT_EQ(a.sliceBlock(), b.sliceBlock()) << label;
    EXPECT_EQ(a.sliceKind(), b.sliceKind()) << label;
    EXPECT_EQ(a.sliceCore(), b.sliceCore()) << label;
    EXPECT_EQ(a.sliceTrap(), b.sliceTrap()) << label;
    EXPECT_EQ(a.sliceHit(), b.sliceHit()) << label;
    EXPECT_EQ(a.slicePrefetched(), b.slicePrefetched()) << label;
    EXPECT_EQ(a.sliceCorrect(), b.sliceCorrect()) << label;
    EXPECT_EQ(a.counterInstr(), b.counterInstr()) << label;
    EXPECT_EQ(a.counterCore(), b.counterCore()) << label;
    EXPECT_EQ(a.counterId(), b.counterId()) << label;
    EXPECT_EQ(a.counterValue(), b.counterValue()) << label;
}

/** One observed functional run at the given batch length. */
TraceRunResult
traceRunAt(const Program &prog, const ExecutorConfig &exec,
           PrefetcherKind kind, std::uint32_t batch_len,
           EventStore &events)
{
    const SystemConfig cfg{};
    TraceEngine engine(cfg, prog, exec, makePrefetcher(kind, cfg));
    engine.setBatchLen(batch_len);
    ObserverConfig obs;
    obs.digests = true;
    obs.events = &events;
    engine.attachObservers(obs);
    return engine.run(kWarmup, kMeasure);
}

/** One observed timed run at the given batch length. */
CycleRunResult
cycleRunAt(const Program &prog, const ExecutorConfig &exec,
           PrefetcherKind kind, std::uint32_t batch_len,
           EventStore &events)
{
    const SystemConfig cfg{};
    CycleEngine engine(cfg, prog, exec, kind);
    engine.setBatchLen(batch_len);
    ObserverConfig obs;
    obs.digests = true;
    obs.events = &events;
    engine.attachObservers(obs);
    return engine.run(kWarmup, kMeasure);
}

/** Batched-vs-scalar equivalence of both engines on one workload. */
void
expectBatchLengthInvariant(const Program &prog,
                           const ExecutorConfig &exec,
                           const std::string &label)
{
    for (const PrefetcherKind kind :
         {PrefetcherKind::None, PrefetcherKind::Pif}) {
        const std::string at =
            label + "/" + prefetcherName(kind);

        EventStore batched_events(fullRecordingOptions());
        EventStore scalar_events(fullRecordingOptions());
        const TraceRunResult batched = traceRunAt(
            prog, exec, kind, recordBatchLen, batched_events);
        const TraceRunResult scalar =
            traceRunAt(prog, exec, kind, 1, scalar_events);

        EXPECT_NE(batched.retireDigest, 0u) << at;
        std::vector<CheckFailure> failures;
        checkTraceIdentical(batched, scalar, "batch-length-invariance",
                            failures);
        for (const CheckFailure &f : failures)
            ADD_FAILURE() << at << ": " << f.invariant << ": "
                          << f.detail;
        expectStoresIdentical(batched_events, scalar_events, at);

        EventStore cyc_batched_events(fullRecordingOptions());
        EventStore cyc_scalar_events(fullRecordingOptions());
        const CycleRunResult cb = cycleRunAt(
            prog, exec, kind, recordBatchLen, cyc_batched_events);
        const CycleRunResult cs =
            cycleRunAt(prog, exec, kind, 1, cyc_scalar_events);

        failures.clear();
        checkCountersIdentical(cb, cs, "batch-length-invariance", true,
                               failures);
        for (const CheckFailure &f : failures)
            ADD_FAILURE() << at << " (cycle): " << f.invariant << ": "
                          << f.detail;
        EXPECT_EQ(cb.cycles, cs.cycles) << at;
        EXPECT_EQ(cb.userInstrs, cs.userInstrs) << at;
        EXPECT_EQ(cb.fetchStallCycles, cs.fetchStallCycles) << at;
        EXPECT_EQ(cb.branchPenaltyCycles, cs.branchPenaltyCycles) << at;
        EXPECT_EQ(cb.demandMisses, cs.demandMisses) << at;
        EXPECT_EQ(cb.latePrefetches, cs.latePrefetches) << at;
        EXPECT_EQ(cb.prefetchFills, cs.prefetchFills) << at;
        EXPECT_EQ(cb.l2Hits, cs.l2Hits) << at;
        EXPECT_EQ(cb.l2Misses, cs.l2Misses) << at;
        EXPECT_DOUBLE_EQ(cb.uipc, cs.uipc) << at;
        expectStoresIdentical(cyc_batched_events, cyc_scalar_events,
                              at + " (cycle)");
    }
}

class PresetBatched : public ::testing::TestWithParam<ServerWorkload>
{
};

TEST_P(PresetBatched, BatchedMatchesScalarOrder)
{
    const ServerWorkload w = GetParam();
    const Program prog = buildWorkloadProgram(w);
    expectBatchLengthInvariant(prog, executorConfigFor(w),
                               workloadKey(w));
}

TEST(ZooBatched, BatchedMatchesScalarOrderOnZooSpecs)
{
    const std::vector<WorkloadZooEntry> zoo = workloadZoo();
    ASSERT_GE(zoo.size(), 2u);
    for (std::size_t i = 0; i < 2; ++i) {
        std::string err;
        auto spec = loadWorkloadSpecFile(zoo[i].path, &err);
        ASSERT_TRUE(spec.has_value()) << zoo[i].key << ": " << err;
        const WorkloadRef ref = workloadRefFromSpec(std::move(*spec));
        expectBatchLengthInvariant(ref.buildProgram(),
                                   ref.executorConfig(), zoo[i].key);
    }
}

TEST(MulticoreBatched, MatchesScalarReferenceAtThreads1And4)
{
    // The pooled runners use the batched engines internally; a
    // hand-built scalar-order engine per core (same seed derivation as
    // runMulticoreTrace) is the reference both thread counts must hit
    // bit for bit.
    const ServerWorkload w = ServerWorkload::OltpDb2;
    const WorkloadRef ref = w;
    constexpr unsigned cores = 2;
    const SystemConfig base{};

    std::vector<TraceRunResult> scalar(cores);
    for (unsigned core = 0; core < cores; ++core) {
        const Program prog = ref.buildProgram(core);
        SystemConfig cfg = base;
        cfg.seed = base.seed + core * 7919;
        TraceEngine engine(cfg, prog, ref.executorConfig(core, core),
                           makePrefetcher(PrefetcherKind::Pif, cfg));
        engine.setBatchLen(1);
        ObserverConfig obs;
        obs.digests = true;
        engine.attachObservers(obs);
        scalar[core] = engine.run(kWarmup, kMeasure);
    }

    for (const unsigned threads : {1u, 4u}) {
        SystemConfig cfg = base;
        cfg.threads = threads;
        const MulticoreTraceResult pooled = runMulticoreTrace(
            w, PrefetcherKind::Pif, cores, kWarmup, kMeasure, cfg);
        ASSERT_EQ(pooled.perCore.size(), scalar.size());
        std::vector<CheckFailure> failures;
        for (unsigned core = 0; core < cores; ++core) {
            // The pooled runner attaches no digests, so compare the
            // full counter block minus the (zero) digest fields.
            TraceRunResult want = scalar[core];
            want.retireDigest = pooled.perCore[core].retireDigest;
            want.accessDigest = pooled.perCore[core].accessDigest;
            checkTraceIdentical(pooled.perCore[core], want,
                                "multicore-batched-invariance",
                                failures);
        }
        for (const CheckFailure &f : failures)
            ADD_FAILURE() << "threads=" << threads << ": " << f.detail;
    }
}

TEST(ObserverCompat, DeprecatedWrappersComposeToUnifiedConfig)
{
    const ServerWorkload w = ServerWorkload::WebApache;
    const Program prog = buildWorkloadProgram(w);
    const SystemConfig cfg{};

    EventStore unified_events(fullRecordingOptions());
    TraceEngine unified(cfg, prog, executorConfigFor(w),
                        makePrefetcher(PrefetcherKind::Pif, cfg));
    ObserverConfig obs;
    obs.digests = true;
    obs.events = &unified_events;
    unified.attachObservers(obs);
    const TraceRunResult a = unified.run(kWarmup, kMeasure);

    // The legacy calls must stack: enabling digests then attaching a
    // store (in either order) ends in the same observer configuration.
    EventStore legacy_events(fullRecordingOptions());
    TraceEngine legacy(cfg, prog, executorConfigFor(w),
                       makePrefetcher(PrefetcherKind::Pif, cfg));
    legacy.enableDigests();
    legacy.attachEvents(&legacy_events);
    const TraceRunResult b = legacy.run(kWarmup, kMeasure);

    std::vector<CheckFailure> failures;
    checkTraceIdentical(a, b, "observer-wrapper-compat", failures);
    for (const CheckFailure &f : failures)
        ADD_FAILURE() << f.invariant << ": " << f.detail;
    EXPECT_NE(b.retireDigest, 0u);
    expectStoresIdentical(unified_events, legacy_events,
                          "wrapper-compat");
}

TEST(UnobservedBatched, BulkFastPathMatchesObservedScalarCounters)
{
    // The bulk no-op-run fast path (and the lean decode it enables)
    // only engages when no observers are attached; the observed run
    // takes the per-instruction path. Observation is read-only, so
    // every simulation counter must agree between the two, and the
    // batch length must not matter for the unobserved run either.
    const ServerWorkload w = ServerWorkload::OltpDb2;
    const Program prog = buildWorkloadProgram(w);
    const SystemConfig cfg{};

    const auto runAt = [&](std::uint32_t batch_len, bool observe) {
        TraceEngine engine(cfg, prog, executorConfigFor(w),
                           makePrefetcher(PrefetcherKind::Pif, cfg));
        engine.setBatchLen(batch_len);
        if (observe) {
            ObserverConfig obs;
            obs.digests = true;
            engine.attachObservers(obs);
        }
        return engine.run(kWarmup, kMeasure);
    };

    const TraceRunResult bulk = runAt(recordBatchLen, false);
    const TraceRunResult bulk1 = runAt(1, false);
    TraceRunResult observed = runAt(recordBatchLen, true);

    std::vector<CheckFailure> failures;
    checkTraceIdentical(bulk, bulk1, "unobserved-batch-invariance",
                        failures);
    // Digest fields are zero on both unobserved runs; mask them off
    // the observed reference so only the simulation counters compare.
    observed.retireDigest = bulk.retireDigest;
    observed.accessDigest = bulk.accessDigest;
    checkTraceIdentical(bulk, observed, "unobserved-vs-observed",
                        failures);
    for (const CheckFailure &f : failures)
        ADD_FAILURE() << f.invariant << ": " << f.detail;
    EXPECT_GT(bulk.instrs, 0u);
}

class BatchReaderTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "pifetch_batch_reader_test.bin";
    }

    void TearDown() override { std::remove(path_.c_str()); }

    /** A stream long enough to span several disk chunks. */
    static std::vector<RetiredInstr>
    sampleTrace(std::size_t n)
    {
        std::vector<RetiredInstr> recs;
        recs.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            RetiredInstr r;
            r.pc = 0x40'0000 + static_cast<Addr>(i) * instrBytes;
            if (i % 7 == 3) {
                r.kind = InstrKind::CondBranch;
                r.target = 0x41'0000 + static_cast<Addr>(i % 97) * 64;
                r.taken = i % 2 == 0;
            }
            r.trapLevel = i % 13 == 0 ? 1 : 0;
            recs.push_back(r);
        }
        return recs;
    }

    std::string path_;
};

TEST_F(BatchReaderTest, DecodesExactlyWhatReadTraceReturns)
{
    const std::vector<RetiredInstr> original = sampleTrace(100'000);
    ASSERT_TRUE(writeTrace(path_, original));

    std::vector<RetiredInstr> aos;
    ASSERT_TRUE(readTrace(path_, aos));
    ASSERT_EQ(aos.size(), original.size());

    TraceBatchReader reader;
    ASSERT_TRUE(reader.open(path_));
    EXPECT_EQ(reader.count(), original.size());

    RecordBatch batch;
    std::size_t seen = 0;
    while (reader.next(batch)) {
        for (std::uint32_t i = 0; i < batch.size; ++i, ++seen) {
            ASSERT_LT(seen, aos.size());
            const RetiredInstr got = batch.get(i);
            const RetiredInstr &want = aos[seen];
            ASSERT_EQ(got.pc, want.pc) << "record " << seen;
            ASSERT_EQ(got.target, want.target) << "record " << seen;
            ASSERT_EQ(got.kind, want.kind) << "record " << seen;
            ASSERT_EQ(got.trapLevel, want.trapLevel)
                << "record " << seen;
            ASSERT_EQ(got.taken, want.taken) << "record " << seen;
            ASSERT_EQ(batch.block[i], blockAddr(want.pc))
                << "record " << seen;
        }
    }
    EXPECT_FALSE(reader.failed());
    EXPECT_EQ(seen, aos.size());
    EXPECT_EQ(reader.decoded(), aos.size());
}

TEST_F(BatchReaderTest, HonorsSmallBatchCaps)
{
    ASSERT_TRUE(writeTrace(path_, sampleTrace(1'000)));
    TraceBatchReader reader;
    ASSERT_TRUE(reader.open(path_));
    RecordBatch batch;
    std::size_t seen = 0;
    while (reader.next(batch, 7)) {
        EXPECT_LE(batch.size, 7u);
        seen += batch.size;
    }
    EXPECT_EQ(seen, 1'000u);
    EXPECT_FALSE(reader.failed());
}

TEST_F(BatchReaderTest, RejectsBadMagic)
{
    ASSERT_TRUE(writeTrace(path_, sampleTrace(64)));
    std::FILE *f = std::fopen(path_.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    const std::uint32_t junk = 0xdeadbeef;
    ASSERT_EQ(std::fwrite(&junk, sizeof(junk), 1, f), 1u);
    ASSERT_EQ(std::fclose(f), 0);

    TraceBatchReader reader;
    EXPECT_FALSE(reader.open(path_));
}

TEST_F(BatchReaderTest, RejectsTruncatedPayload)
{
    ASSERT_TRUE(writeTrace(path_, sampleTrace(64)));
    std::FILE *f = std::fopen(path_.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 0, SEEK_END), 0);
    const long size = std::ftell(f);
    ASSERT_EQ(std::fclose(f), 0);
    ASSERT_EQ(0, truncate(path_.c_str(), size - 10));

    // The count-vs-payload validation fires at open, exactly like
    // readTrace() on the same file.
    TraceBatchReader reader;
    EXPECT_FALSE(reader.open(path_));
}

TEST_F(BatchReaderTest, MissingFileFailsOpen)
{
    TraceBatchReader reader;
    EXPECT_FALSE(reader.open(path_ + ".nope"));
}

TEST_F(BatchReaderTest, ReplayBatchFeedsTheBatchedPipeline)
{
    // End-to-end: decode a captured trace with the SoA reader and push
    // it through TraceEngine::replayBatch; the cache must observe the
    // stream (nonzero accesses) deterministically across two replays.
    ASSERT_TRUE(writeTrace(path_, sampleTrace(50'000)));

    const auto replay = [&]() {
        const SystemConfig cfg{};
        const Program prog =
            buildWorkloadProgram(ServerWorkload::WebApache);
        TraceEngine engine(
            cfg, prog, executorConfigFor(ServerWorkload::WebApache),
            makePrefetcher(PrefetcherKind::Pif, cfg));
        ObserverConfig obs;
        obs.digests = true;
        engine.attachObservers(obs);
        TraceBatchReader reader;
        EXPECT_TRUE(reader.open(path_));
        RecordBatch batch;
        while (reader.next(batch))
            engine.replayBatch(batch);
        EXPECT_FALSE(reader.failed());
        return std::make_pair(engine.retireDigest(),
                              engine.accessDigest());
    };
    const auto a = replay();
    const auto b = replay();
    EXPECT_NE(a.first, 0u);
    EXPECT_NE(a.second, 0u);
    EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(
    AllSix, PresetBatched, ::testing::ValuesIn(allServerWorkloads()),
    [](const ::testing::TestParamInfo<ServerWorkload> &info) {
        std::string n =
            workloadGroup(info.param) + workloadName(info.param);
        n.erase(std::remove(n.begin(), n.end(), ' '), n.end());
        return n;
    });

} // namespace
} // namespace pifetch
