/**
 * @file
 * Temporal compactor tests (loop-redundancy filtering).
 */

#include <gtest/gtest.h>

#include "pif/temporal_compactor.hh"

namespace pifetch {
namespace {

SpatialRegion
rec(Addr trigger_pc, std::uint32_t bits)
{
    SpatialRegion r;
    r.triggerPc = trigger_pc;
    r.bits = bits;
    return r;
}

TEST(TemporalCompactor, FirstRecordAdmitted)
{
    TemporalCompactor tc(4);
    EXPECT_TRUE(tc.admit(rec(0x100, 0b11)));
    EXPECT_EQ(tc.presented(), 1u);
    EXPECT_EQ(tc.filtered(), 0u);
}

TEST(TemporalCompactor, ExactRepeatFiltered)
{
    TemporalCompactor tc(4);
    tc.admit(rec(0x100, 0b11));
    EXPECT_FALSE(tc.admit(rec(0x100, 0b11)));
    EXPECT_EQ(tc.filtered(), 1u);
}

TEST(TemporalCompactor, SubsetFiltered)
{
    TemporalCompactor tc(4);
    tc.admit(rec(0x100, 0b111));
    EXPECT_FALSE(tc.admit(rec(0x100, 0b010)));
    EXPECT_FALSE(tc.admit(rec(0x100, 0)));
}

TEST(TemporalCompactor, SupersetAdmitted)
{
    // New blocks appear: the record is NOT a subset, so it records.
    TemporalCompactor tc(4);
    tc.admit(rec(0x100, 0b001));
    EXPECT_TRUE(tc.admit(rec(0x100, 0b011)));
}

TEST(TemporalCompactor, DifferentTriggerAdmitted)
{
    TemporalCompactor tc(4);
    tc.admit(rec(0x100, 0b1));
    EXPECT_TRUE(tc.admit(rec(0x200, 0b1)));
}

TEST(TemporalCompactor, LruEvictionForgetsOldRecords)
{
    TemporalCompactor tc(2);
    tc.admit(rec(0x100, 1));
    tc.admit(rec(0x200, 1));
    tc.admit(rec(0x300, 1));  // evicts 0x100
    EXPECT_EQ(tc.size(), 2u);
    EXPECT_TRUE(tc.admit(rec(0x100, 1)));  // re-admitted: was evicted
}

TEST(TemporalCompactor, MatchPromotesToMru)
{
    TemporalCompactor tc(2);
    tc.admit(rec(0x100, 1));
    tc.admit(rec(0x200, 1));
    // Touch 0x100 so 0x200 becomes LRU.
    EXPECT_FALSE(tc.admit(rec(0x100, 1)));
    tc.admit(rec(0x300, 1));  // evicts 0x200
    EXPECT_FALSE(tc.admit(rec(0x100, 1)));  // still resident
    EXPECT_TRUE(tc.admit(rec(0x200, 1)));   // was evicted
}

TEST(TemporalCompactor, TightLoopScenario)
{
    // A loop spanning two regions: only the first iteration records.
    TemporalCompactor tc(4);
    unsigned recorded = 0;
    for (int iter = 0; iter < 100; ++iter) {
        recorded += tc.admit(rec(0x100, 0b011)) ? 1 : 0;
        recorded += tc.admit(rec(0x500, 0b001)) ? 1 : 0;
    }
    EXPECT_EQ(recorded, 2u);
}

TEST(TemporalCompactorDeath, RejectsZeroEntries)
{
    EXPECT_EXIT(TemporalCompactor(0), ::testing::ExitedWithCode(1),
                "at least one");
}

TEST(TemporalCompactor, ResetForgetsEverything)
{
    TemporalCompactor tc(4);
    tc.admit(rec(0x100, 1));
    tc.reset();
    EXPECT_EQ(tc.size(), 0u);
    EXPECT_TRUE(tc.admit(rec(0x100, 1)));
}

} // namespace
} // namespace pifetch
