/**
 * @file
 * Cross-module property sweeps: invariants that must hold for any
 * seed and any workload shape, exercised over a parameter grid.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_set>

#include "common/results.hh"
#include "pif/pif_prefetcher.hh"
#include "sim/trace_engine.hh"
#include "sim/workloads.hh"
#include "trace/generator.hh"

namespace pifetch {
namespace {

WorkloadParams
gridParams(std::uint64_t seed, unsigned layers, double app_calls)
{
    WorkloadParams p;
    p.name = "grid";
    p.seed = seed;
    p.appFunctions = 300;
    p.libFunctions = 60;
    p.handlers = 4;
    p.callLayers = layers;
    p.meanAppCalls = app_calls;
    p.transactions = 4;
    p.interruptRate = 5e-5;
    return p;
}

/** (seed, callLayers, meanAppCalls) grid. */
class WorkloadGrid
    : public ::testing::TestWithParam<
          std::tuple<std::uint64_t, unsigned, double>>
{
  protected:
    WorkloadParams
    params() const
    {
        const auto [seed, layers, calls] = GetParam();
        return gridParams(seed, layers, calls);
    }
};

TEST_P(WorkloadGrid, ProgramValidatesAndExecutes)
{
    const Program prog = WorkloadGenerator::build(params());
    ExecutorConfig ec;
    ec.seed = std::get<0>(GetParam()) ^ 0xabc;
    ec.interruptRate = params().interruptRate;
    Executor exec(prog, ec);

    RetiredInstr prev = exec.next();
    for (int i = 0; i < 60'000; ++i) {
        const RetiredInstr cur = exec.next();
        if (cur.trapLevel == prev.trapLevel) {
            ASSERT_EQ(cur.pc, prev.nextPc()) << "at " << i;
        }
        ASSERT_LE(cur.trapLevel, 1);
        ASSERT_LT(cur.pc, prog.codeEnd);
        prev = cur;
    }
}

TEST_P(WorkloadGrid, PifNeverIncreasesMisses)
{
    const Program prog = WorkloadGenerator::build(params());
    ExecutorConfig ec;
    ec.seed = std::get<0>(GetParam()) ^ 0xdef;
    ec.interruptRate = params().interruptRate;

    SystemConfig cfg;
    cfg.l1i.sizeBytes = 16 * 1024;  // small: force pressure

    TraceEngine base(cfg, prog, ec, std::make_unique<NullPrefetcher>());
    const TraceRunResult rb = base.run(100'000, 200'000);

    TraceEngine pif(cfg, prog, ec,
                    std::make_unique<PifPrefetcher>(cfg.pif));
    const TraceRunResult rp = pif.run(100'000, 200'000);

    // The access stream is identical; PIF may only convert misses to
    // hits (pollution can steal a few back, hence the 10% slack).
    EXPECT_EQ(rb.accesses, rp.accesses);
    EXPECT_LT(rp.misses, rb.misses + rb.misses / 10 + 50);
}

TEST_P(WorkloadGrid, CompactionNeverLosesBlocks)
{
    // Every block that retires must be covered by the union of the
    // regions PIF records (trigger or set neighbour bit), so replay
    // can in principle prefetch everything.
    const Program prog = WorkloadGenerator::build(params());
    ExecutorConfig ec;
    ec.seed = std::get<0>(GetParam());
    ec.interruptRate = 0.0;
    Executor exec(prog, ec);

    SpatialCompactor compactor(2, 5);
    std::vector<SpatialRegion> recs;
    std::vector<Addr> blocks;
    Addr last = invalidAddr;
    for (int i = 0; i < 50'000; ++i) {
        const RetiredInstr r = exec.next();
        const Addr b = blockAddr(r.pc);
        if (b != last) {
            last = b;
            blocks.push_back(b);
        }
        if (auto rec = compactor.observe(r.pc, true, r.trapLevel))
            recs.push_back(*rec);
    }
    if (auto rec = compactor.flush())
        recs.push_back(*rec);

    std::unordered_set<Addr> covered;
    for (const SpatialRegion &rec : recs) {
        const Addr t = rec.triggerBlock();
        covered.insert(t);
        for (unsigned i = 0; i < 32; ++i) {
            if (rec.bits & (std::uint32_t{1} << i))
                covered.insert(t + SpatialRegion::offsetOf(i, 2));
        }
    }
    for (Addr b : blocks)
        ASSERT_TRUE(covered.count(b)) << "block " << b << " lost";
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WorkloadGrid,
    ::testing::Combine(::testing::Values(1u, 42u, 1337u),
                       ::testing::Values(4u, 8u, 12u),
                       ::testing::Values(1.5, 2.0)));

// ---------------------------------------------------------------------
// Histogram boundary properties: zero, bucket-edge and overflow
// samples must land in well-defined buckets for any geometry, and the
// serialized form (common/results.hh) must agree with the accessors.

/** Bucket-count grid for the log2 histogram. */
class Log2Boundary : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(Log2Boundary, ZeroEdgeAndOverflowBucketing)
{
    const unsigned max_log2 = GetParam();
    Log2Histogram h(max_log2);
    ASSERT_EQ(h.buckets(), max_log2 + 1);

    // Zero and one both land in bucket 0.
    h.add(0);
    h.add(1);
    EXPECT_DOUBLE_EQ(h.weightAt(0), 2.0);

    // Exact powers of two land in their own bucket; one below lands
    // one bucket lower (except 2^1 - 1 == 1, which is bucket 0).
    for (unsigned k = 1; k <= max_log2; ++k) {
        Log2Histogram p(max_log2);
        p.add(std::uint64_t{1} << k);
        EXPECT_DOUBLE_EQ(p.weightAt(k), 1.0) << "2^" << k;
        p.add((std::uint64_t{1} << k) - 1);
        EXPECT_DOUBLE_EQ(p.weightAt(k == 1 ? 0 : k - 1), 1.0)
            << "2^" << k << " - 1";
        EXPECT_EQ(p.highestBucket(), k);
    }

    // Values past the top bucket clamp into it instead of dropping.
    Log2Histogram o(max_log2);
    o.add(std::uint64_t{1} << 63);
    o.add(~std::uint64_t{0});
    EXPECT_DOUBLE_EQ(o.weightAt(max_log2), 2.0);
    EXPECT_DOUBLE_EQ(o.totalWeight(), 2.0);
    EXPECT_DOUBLE_EQ(o.cumulativeAt(max_log2), 1.0);

    // The serializer reports exactly the clamped shape.
    const ResultValue v = toResult(o);
    ASSERT_EQ(v.find("buckets")->size(), max_log2 + 1u);
    const ResultValue &top = v.find("buckets")->at(max_log2);
    EXPECT_DOUBLE_EQ(top.find("weight")->number(), 2.0);
    EXPECT_DOUBLE_EQ(top.find("cumulative")->number(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Geometries, Log2Boundary,
                         ::testing::Values(1u, 4u, 10u, 40u));

/** Upper-bound grids for the range histogram. */
class RangeBoundary
    : public ::testing::TestWithParam<std::vector<std::uint64_t>>
{
};

TEST_P(RangeBoundary, EdgesClampAndLabelsMatch)
{
    const std::vector<std::uint64_t> bounds = GetParam();
    RangeHistogram h(bounds);
    ASSERT_EQ(h.ranges(), bounds.size());

    // Zero (below every range) lands in the first range.
    h.add(0);
    EXPECT_DOUBLE_EQ(h.weightAt(0), 1.0);

    // Each inclusive upper bound lands in its own range; one above
    // moves to the next (or clamps at the top).
    for (unsigned r = 0; r < bounds.size(); ++r) {
        RangeHistogram p(bounds);
        p.add(bounds[r]);
        EXPECT_DOUBLE_EQ(p.weightAt(r), 1.0) << "bound " << bounds[r];
        p.add(bounds[r] + 1);
        const unsigned expect =
            r + 1 < bounds.size() ? r + 1 : r;
        EXPECT_DOUBLE_EQ(p.weightAt(expect) +
                             (expect == r ? -1.0 : 0.0),
                         1.0)
            << "bound+1 " << bounds[r] + 1;
    }

    // Far overflow clamps into the last range, keeping the total.
    RangeHistogram o(bounds);
    o.add(~std::uint64_t{0});
    EXPECT_DOUBLE_EQ(o.weightAt(o.ranges() - 1), 1.0);
    EXPECT_DOUBLE_EQ(o.totalWeight(), 1.0);

    // Serialized labels line up with labelAt and fractions sum to 1.
    const ResultValue v = toResult(o);
    ASSERT_EQ(v.find("buckets")->size(), bounds.size());
    double sum = 0.0;
    for (unsigned r = 0; r < o.ranges(); ++r) {
        const ResultValue &b = v.find("buckets")->at(r);
        EXPECT_EQ(b.find("label")->str(), o.labelAt(r));
        sum += b.find("fraction")->number();
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, RangeBoundary,
    ::testing::Values(std::vector<std::uint64_t>{1},
                      std::vector<std::uint64_t>{1, 2, 4, 8, 16, 32},
                      std::vector<std::uint64_t>{5, 100, 1000}));

/** (lo, hi) grid for the linear histogram. */
class LinearBoundary
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(LinearBoundary, EndpointsCountAndOutOfRangeDrops)
{
    const auto [lo, hi] = GetParam();
    LinearHistogram h(lo, hi);

    // Both inclusive endpoints are in range...
    h.add(lo);
    h.add(hi);
    EXPECT_DOUBLE_EQ(h.weightAt(lo), lo == hi ? 2.0 : 1.0);
    EXPECT_DOUBLE_EQ(h.weightAt(hi), lo == hi ? 2.0 : 1.0);
    EXPECT_DOUBLE_EQ(h.totalWeight(), 2.0);
    EXPECT_DOUBLE_EQ(h.dropped(), 0.0);

    // ...and one past either endpoint is dropped but accounted.
    h.add(lo - 1, 0.5);
    h.add(hi + 1, 0.25);
    EXPECT_DOUBLE_EQ(h.totalWeight(), 2.0);
    EXPECT_DOUBLE_EQ(h.dropped(), 0.75);

    // The serializer exposes the dropped weight and every domain
    // value, so downstream tooling can report truncation.
    const ResultValue v = toResult(h);
    EXPECT_EQ(v.find("lo")->intValue(), lo);
    EXPECT_EQ(v.find("hi")->intValue(), hi);
    EXPECT_DOUBLE_EQ(v.find("dropped_weight")->number(), 0.75);
    ASSERT_EQ(v.find("buckets")->size(),
              static_cast<std::size_t>(hi - lo + 1));
    EXPECT_EQ(v.find("buckets")->at(0).find("value")->intValue(), lo);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, LinearBoundary,
    ::testing::Values(std::pair<int, int>{-4, 12},
                      std::pair<int, int>{0, 0},
                      std::pair<int, int>{-8, -2},
                      std::pair<int, int>{3, 7}));

} // namespace
} // namespace pifetch
