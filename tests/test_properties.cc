/**
 * @file
 * Cross-module property sweeps: invariants that must hold for any
 * seed and any workload shape, exercised over a parameter grid.
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "pif/pif_prefetcher.hh"
#include "sim/trace_engine.hh"
#include "sim/workloads.hh"
#include "trace/generator.hh"

namespace pifetch {
namespace {

WorkloadParams
gridParams(std::uint64_t seed, unsigned layers, double app_calls)
{
    WorkloadParams p;
    p.name = "grid";
    p.seed = seed;
    p.appFunctions = 300;
    p.libFunctions = 60;
    p.handlers = 4;
    p.callLayers = layers;
    p.meanAppCalls = app_calls;
    p.transactions = 4;
    p.interruptRate = 5e-5;
    return p;
}

/** (seed, callLayers, meanAppCalls) grid. */
class WorkloadGrid
    : public ::testing::TestWithParam<
          std::tuple<std::uint64_t, unsigned, double>>
{
  protected:
    WorkloadParams
    params() const
    {
        const auto [seed, layers, calls] = GetParam();
        return gridParams(seed, layers, calls);
    }
};

TEST_P(WorkloadGrid, ProgramValidatesAndExecutes)
{
    const Program prog = WorkloadGenerator::build(params());
    ExecutorConfig ec;
    ec.seed = std::get<0>(GetParam()) ^ 0xabc;
    ec.interruptRate = params().interruptRate;
    Executor exec(prog, ec);

    RetiredInstr prev = exec.next();
    for (int i = 0; i < 60'000; ++i) {
        const RetiredInstr cur = exec.next();
        if (cur.trapLevel == prev.trapLevel) {
            ASSERT_EQ(cur.pc, prev.nextPc()) << "at " << i;
        }
        ASSERT_LE(cur.trapLevel, 1);
        ASSERT_LT(cur.pc, prog.codeEnd);
        prev = cur;
    }
}

TEST_P(WorkloadGrid, PifNeverIncreasesMisses)
{
    const Program prog = WorkloadGenerator::build(params());
    ExecutorConfig ec;
    ec.seed = std::get<0>(GetParam()) ^ 0xdef;
    ec.interruptRate = params().interruptRate;

    SystemConfig cfg;
    cfg.l1i.sizeBytes = 16 * 1024;  // small: force pressure

    TraceEngine base(cfg, prog, ec, std::make_unique<NullPrefetcher>());
    const TraceRunResult rb = base.run(100'000, 200'000);

    TraceEngine pif(cfg, prog, ec,
                    std::make_unique<PifPrefetcher>(cfg.pif));
    const TraceRunResult rp = pif.run(100'000, 200'000);

    // The access stream is identical; PIF may only convert misses to
    // hits (pollution can steal a few back, hence the 10% slack).
    EXPECT_EQ(rb.accesses, rp.accesses);
    EXPECT_LT(rp.misses, rb.misses + rb.misses / 10 + 50);
}

TEST_P(WorkloadGrid, CompactionNeverLosesBlocks)
{
    // Every block that retires must be covered by the union of the
    // regions PIF records (trigger or set neighbour bit), so replay
    // can in principle prefetch everything.
    const Program prog = WorkloadGenerator::build(params());
    ExecutorConfig ec;
    ec.seed = std::get<0>(GetParam());
    ec.interruptRate = 0.0;
    Executor exec(prog, ec);

    SpatialCompactor compactor(2, 5);
    std::vector<SpatialRegion> recs;
    std::vector<Addr> blocks;
    Addr last = invalidAddr;
    for (int i = 0; i < 50'000; ++i) {
        const RetiredInstr r = exec.next();
        const Addr b = blockAddr(r.pc);
        if (b != last) {
            last = b;
            blocks.push_back(b);
        }
        if (auto rec = compactor.observe(r.pc, true, r.trapLevel))
            recs.push_back(*rec);
    }
    if (auto rec = compactor.flush())
        recs.push_back(*rec);

    std::unordered_set<Addr> covered;
    for (const SpatialRegion &rec : recs) {
        const Addr t = rec.triggerBlock();
        covered.insert(t);
        for (unsigned i = 0; i < 32; ++i) {
            if (rec.bits & (std::uint32_t{1} << i))
                covered.insert(t + SpatialRegion::offsetOf(i, 2));
        }
    }
    for (Addr b : blocks)
        ASSERT_TRUE(covered.count(b)) << "block " << b << " lost";
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WorkloadGrid,
    ::testing::Combine(::testing::Values(1u, 42u, 1337u),
                       ::testing::Values(4u, 8u, 12u),
                       ::testing::Values(1.5, 2.0)));

} // namespace
} // namespace pifetch
