/**
 * @file
 * Worker-pool subsystem tests.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/parallel.hh"

namespace pifetch {
namespace {

TEST(Parallel, ResolveThreadsZeroIsAuto)
{
    EXPECT_GE(resolveThreads(0), 1u);
    EXPECT_EQ(resolveThreads(3), 3u);
    EXPECT_EQ(resolveThreads(1), 1u);
}

TEST(Parallel, EnvOverrideWins)
{
    // Restore whatever the harness pinned (CI runs this binary with
    // PIFETCH_THREADS=1 and =4) so later tests see the real setting.
    const char *prior = std::getenv("PIFETCH_THREADS");
    const std::string saved = prior ? prior : "";

    ASSERT_EQ(setenv("PIFETCH_THREADS", "5", 1), 0);
    EXPECT_EQ(defaultThreads(), 5u);
    EXPECT_EQ(resolveThreads(0), 5u);
    EXPECT_EQ(resolveThreads(2), 2u);  // explicit request still wins

    ASSERT_EQ(setenv("PIFETCH_THREADS", "garbage", 1), 0);
    EXPECT_EQ(defaultThreads(), 1u);  // malformed pins serial

    ASSERT_EQ(unsetenv("PIFETCH_THREADS"), 0);
    EXPECT_GE(defaultThreads(), 1u);

    if (prior) {
        ASSERT_EQ(setenv("PIFETCH_THREADS", saved.c_str(), 1), 0);
    }
}

TEST(Parallel, CoversEveryIndexExactlyOnce)
{
    for (unsigned threads : {1u, 2u, 4u, 7u}) {
        ThreadPool pool(threads);
        EXPECT_EQ(pool.threads(), threads);
        constexpr std::uint64_t n = 1000;
        std::vector<std::atomic<int>> hits(n);
        for (auto &h : hits)
            h.store(0);
        pool.parallelFor(n, [&](std::uint64_t i) {
            hits[i].fetch_add(1);
        });
        for (std::uint64_t i = 0; i < n; ++i)
            EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(Parallel, PoolIsReusable)
{
    ThreadPool pool(4);
    for (int round = 0; round < 20; ++round) {
        std::atomic<std::uint64_t> sum{0};
        pool.parallelFor(100, [&](std::uint64_t i) {
            sum.fetch_add(i + 1);
        });
        EXPECT_EQ(sum.load(), 5050u) << "round " << round;
    }
}

TEST(Parallel, DisjointSlotsMatchSerial)
{
    constexpr std::uint64_t n = 64;
    auto task = [](std::uint64_t i) {
        // A little deterministic arithmetic per slot.
        std::uint64_t v = i * 2654435761u + 17;
        for (int k = 0; k < 100; ++k)
            v = v * 6364136223846793005ull + 1442695040888963407ull;
        return v;
    };

    std::vector<std::uint64_t> serial(n);
    parallelFor(1, n, [&](std::uint64_t i) { serial[i] = task(i); });

    std::vector<std::uint64_t> parallel(n);
    parallelFor(4, n, [&](std::uint64_t i) { parallel[i] = task(i); });

    EXPECT_EQ(serial, parallel);
}

TEST(Parallel, MoreThreadsThanWork)
{
    ThreadPool pool(8);
    std::atomic<int> count{0};
    pool.parallelFor(3, [&](std::uint64_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 3);
}

TEST(Parallel, ZeroAndOneIndexDegenerate)
{
    ThreadPool pool(4);
    int calls = 0;
    pool.parallelFor(0, [&](std::uint64_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    pool.parallelFor(1, [&](std::uint64_t i) {
        ++calls;
        EXPECT_EQ(i, 0u);
    });
    EXPECT_EQ(calls, 1);
}

TEST(Parallel, TaskExceptionPropagates)
{
    // Same contract at every thread count: the loop drains all
    // indices, then rethrows the first failure (so side effects are
    // identical between the serial fallback and the pool path).
    for (unsigned threads : {1u, 4u}) {
        ThreadPool pool(threads);
        std::atomic<int> completed{0};
        bool threw = false;
        try {
            pool.parallelFor(50, [&](std::uint64_t i) {
                if (i == 13)
                    throw std::runtime_error("boom");
                completed.fetch_add(1);
            });
        } catch (const std::runtime_error &e) {
            threw = true;
            EXPECT_EQ(std::string(e.what()), "boom");
        }
        EXPECT_TRUE(threw);
        EXPECT_EQ(completed.load(), 49) << threads << " threads";
        // And the pool survives for the next job.
        std::atomic<int> after{0};
        pool.parallelFor(10, [&](std::uint64_t) {
            after.fetch_add(1);
        });
        EXPECT_EQ(after.load(), 10);
    }
}

} // namespace
} // namespace pifetch
