/**
 * @file
 * Results-serialization tests: JSON escaping, the NaN/Inf policy,
 * parse round trips, empty histograms and CSV quoting — the contract
 * the golden fixtures and `pifetch run --json` artifacts rely on.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "common/results.hh"

namespace pifetch {
namespace {

TEST(JsonEscape, EscapesSpecialsAndControls)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
    EXPECT_EQ(jsonEscape("\b\f"), "\\b\\f");
    EXPECT_EQ(jsonEscape(std::string("\x01\x1f", 2)),
              "\\u0001\\u001f");
    // UTF-8 payloads pass through untouched.
    EXPECT_EQ(jsonEscape("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(Json, ScalarSerialization)
{
    EXPECT_EQ(toJson(ResultValue()), "null");
    EXPECT_EQ(toJson(ResultValue(true)), "true");
    EXPECT_EQ(toJson(ResultValue(false)), "false");
    EXPECT_EQ(toJson(ResultValue(-7)), "-7");
    EXPECT_EQ(toJson(ResultValue(18446744073709551615ull)),
              "18446744073709551615");
    EXPECT_EQ(toJson(ResultValue("hi")), "\"hi\"");
    // Reals always keep a '.' or exponent so the kind round-trips.
    EXPECT_EQ(toJson(ResultValue(2.0)), "2.0");
    EXPECT_EQ(toJson(ResultValue(0.5)), "0.5");
}

TEST(Json, NanAndInfSerializeAsNull)
{
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_EQ(toJson(ResultValue(nan)), "null");
    EXPECT_EQ(toJson(ResultValue(inf)), "null");
    EXPECT_EQ(toJson(ResultValue(-inf)), "null");

    ResultValue row = ResultValue::array();
    row.push(1.0);
    row.push(nan);
    EXPECT_EQ(toJson(row, 0), "[1.0,null]");
}

TEST(Json, DoubleFormattingRoundTripsBits)
{
    const double cases[] = {
        0.0, -0.0, 0.1, 1.0 / 3.0, 2.0 / 3.0, 1e-10, 1e308,
        5e-324,  // smallest denormal
        0.7596928982725528, 123456789.123456789,
    };
    for (const double d : cases) {
        const std::string s = toJson(ResultValue(d));
        const auto parsed = parseJson(s);
        ASSERT_TRUE(parsed.has_value()) << s;
        const double back = parsed->number();
        EXPECT_EQ(std::memcmp(&back, &d, sizeof d), 0)
            << s << " reparsed as " << back;
    }
}

TEST(Json, DocumentRoundTrip)
{
    ResultValue doc = ResultValue::object();
    doc.set("name", "quote\"backslash\\newline\n");
    doc.set("count", 42u);
    doc.set("delta", -3);
    doc.set("ratio", 0.25);
    doc.set("flag", true);
    doc.set("missing", nullptr);
    ResultValue arr = ResultValue::array();
    arr.push(1);
    arr.push("two");
    arr.push(3.5);
    ResultValue inner = ResultValue::object();
    inner.set("empty_arr", ResultValue::array());
    inner.set("empty_obj", ResultValue::object());
    arr.push(std::move(inner));
    doc.set("items", std::move(arr));

    for (const unsigned indent : {0u, 2u, 4u}) {
        std::string err;
        const auto parsed = parseJson(toJson(doc, indent), &err);
        ASSERT_TRUE(parsed.has_value()) << err;
        EXPECT_EQ(*parsed, doc) << toJson(doc, indent);
    }
}

TEST(Json, ParserHandlesUnicodeEscapes)
{
    const auto v = parseJson("\"\\u0041\\u00e9\\ud83d\\ude00\"");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->str(), "A\xc3\xa9\xf0\x9f\x98\x80");
}

TEST(Json, ParserClassifiesNumberKinds)
{
    EXPECT_EQ(parseJson("7")->kind(), ResultValue::Kind::Uint);
    EXPECT_EQ(parseJson("-7")->kind(), ResultValue::Kind::Int);
    EXPECT_EQ(parseJson("7.0")->kind(), ResultValue::Kind::Real);
    EXPECT_EQ(parseJson("7e2")->kind(), ResultValue::Kind::Real);
}

TEST(Json, ParserRejectsMalformedInput)
{
    for (const char *bad :
         {"", "{", "[1,", "{\"a\":}", "{\"a\" 1}", "tru", "\"unterm",
          "[1] trailing", "{\"a\":1,}", "nan", "--1", "1.2.3",
          "\"\\x41\""}) {
        std::string err;
        EXPECT_FALSE(parseJson(bad, &err).has_value()) << bad;
        EXPECT_FALSE(err.empty()) << bad;
    }
}

TEST(Json, EqualityComparesAcrossNumericKinds)
{
    EXPECT_EQ(ResultValue(7), ResultValue(7u));
    EXPECT_EQ(ResultValue(7.0), ResultValue(7u));
    EXPECT_NE(ResultValue(-1), ResultValue(1u));
    EXPECT_NE(ResultValue(7), ResultValue(8));
    // NaN never equals anything, including itself (IEEE).
    const double nan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_NE(ResultValue(nan), ResultValue(nan));
}

TEST(EmptyHistograms, SerializeCleanly)
{
    const Log2Histogram log2(10);
    ResultValue v = toResult(log2);
    EXPECT_EQ(v.find("total_weight")->number(), 0.0);
    EXPECT_EQ(v.find("buckets")->size(), 0u);

    const RangeHistogram range({1, 2, 4});
    v = toResult(range);
    EXPECT_EQ(v.find("buckets")->size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(v.find("buckets")->at(i).find("fraction")->number(),
                  0.0);
    }

    const LinearHistogram lin(-2, 2);
    v = toResult(lin);
    EXPECT_EQ(v.find("buckets")->size(), 5u);
    EXPECT_EQ(v.find("dropped_weight")->number(), 0.0);

    // The empty trees serialize and round-trip.
    const auto parsed = parseJson(toJson(v));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, v);
}

TEST(StatGroupSerialization, CountersBecomeMembers)
{
    StatGroup g("l1i");
    Counter hits(g, "hits", "demand hits");
    Counter misses(g, "misses", "demand misses");
    hits += 3;
    ++misses;
    const ResultValue v = toResult(g);
    EXPECT_EQ(v.find("group")->str(), "l1i");
    EXPECT_EQ(v.find("counters")->find("hits")->uintValue(), 3u);
    EXPECT_EQ(v.find("counters")->find("misses")->uintValue(), 1u);
}

TEST(CsvEscape, QuotesPerRfc4180)
{
    EXPECT_EQ(csvEscape("plain"), "plain");
    EXPECT_EQ(csvEscape("a,b"), "\"a,b\"");
    EXPECT_EQ(csvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(csvEscape("line1\nline2"), "\"line1\nline2\"");
    EXPECT_EQ(csvEscape("cr\rhere"), "\"cr\rhere\"");
    EXPECT_EQ(csvEscape(""), "");
}

TEST(Csv, RendersTablesWithQuoting)
{
    ResultValue t = makeTable("Title, with comma",
                              {"name", "value"});
    ResultValue row = ResultValue::array();
    row.push("a,b");
    row.push(1.5);
    t.find("rows")->push(std::move(row));
    ResultValue row2 = ResultValue::array();
    row2.push("q\"uote");
    row2.push(nullptr);
    t.find("rows")->push(std::move(row2));

    ResultValue doc = ResultValue::object();
    doc.set("tables", ResultValue::array().push(std::move(t)));
    const std::string csv = toCsv(doc);
    EXPECT_EQ(csv,
              "# Title, with comma\n"
              "name,value\n"
              "\"a,b\",1.5\n"
              "\"q\"\"uote\",\n");
}

TEST(Csv, MultipleTablesSeparatedByBlankLine)
{
    ResultValue doc = ResultValue::object();
    ResultValue tables = ResultValue::array();
    tables.push(makeTable("one", {"a"}));
    tables.push(makeTable("two", {"b"}));
    doc.set("tables", std::move(tables));
    EXPECT_EQ(toCsv(doc), "# one\na\n\n# two\nb\n");
}

TEST(RenderText, ShowsTitleColumnsAndNotes)
{
    ResultValue t = makeTable("My Table", {"col_a", "col_b"});
    ResultValue row = ResultValue::array();
    row.push("x");
    row.push(0.125);
    t.find("rows")->push(std::move(row));

    ResultValue doc = ResultValue::object();
    doc.set("experiment", "demo");
    doc.set("tables", ResultValue::array().push(std::move(t)));
    doc.set("notes", ResultValue::array().push("a note"));

    const std::string text = renderText(doc);
    EXPECT_NE(text.find("demo"), std::string::npos);
    EXPECT_NE(text.find("My Table"), std::string::npos);
    EXPECT_NE(text.find("col_a"), std::string::npos);
    EXPECT_NE(text.find("0.1250"), std::string::npos);
    EXPECT_NE(text.find("a note"), std::string::npos);
}

} // namespace
} // namespace pifetch
