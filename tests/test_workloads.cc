/**
 * @file
 * Server-suite workload property tests.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "sim/workloads.hh"

namespace pifetch {
namespace {

/** Parameterized over all six workloads. */
class SuiteWorkload : public ::testing::TestWithParam<ServerWorkload>
{
};

TEST_P(SuiteWorkload, ExecutesWithoutDiscontinuities)
{
    const ServerWorkload w = GetParam();
    const Program prog = buildWorkloadProgram(w);
    Executor exec(prog, executorConfigFor(w));

    RetiredInstr prev = exec.next();
    for (int i = 0; i < 100'000; ++i) {
        const RetiredInstr cur = exec.next();
        if (cur.trapLevel == prev.trapLevel) {
            ASSERT_EQ(cur.pc, prev.nextPc())
                << workloadName(w) << " discontinuity at " << i;
        }
        ASSERT_LT(cur.pc, prog.codeEnd);
        prev = cur;
    }
}

TEST_P(SuiteWorkload, DynamicFootprintExceedsL1i)
{
    const ServerWorkload w = GetParam();
    const Program prog = buildWorkloadProgram(w);
    Executor exec(prog, executorConfigFor(w));
    // Skip warmup, then measure the touched set over a window.
    for (int i = 0; i < 500'000; ++i)
        exec.next();
    std::unordered_set<Addr> blocks;
    for (int i = 0; i < 2'000'000; ++i)
        blocks.insert(blockAddr(exec.next().pc));
    // Table I's premise: working sets dwarf the 1024-block L1-I.
    // (Staying modestly above suffices for the DSS kernels.)
    EXPECT_GT(blocks.size() * blockBytes, 40u * 1024)
        << workloadName(w);
}

TEST_P(SuiteWorkload, InterruptsOccurAtPresetRate)
{
    const ServerWorkload w = GetParam();
    const WorkloadParams params = workloadParams(w);
    const Program prog = buildWorkloadProgram(w);
    Executor exec(prog, executorConfigFor(w));
    const InstCount n = 2'000'000;
    exec.run(n, [](const RetiredInstr &) {});
    const double rate = static_cast<double>(exec.interrupts()) /
                        static_cast<double>(n);
    EXPECT_GT(rate, params.interruptRate * 0.4) << workloadName(w);
    EXPECT_LT(rate, params.interruptRate * 2.5) << workloadName(w);
}

TEST_P(SuiteWorkload, TransactionsComplete)
{
    const ServerWorkload w = GetParam();
    const Program prog = buildWorkloadProgram(w);
    Executor exec(prog, executorConfigFor(w));
    exec.run(3'000'000, [](const RetiredInstr &) {});
    // DSS queries run hundreds of thousands of instructions each
    // ("for the DSS workloads, we collect traces for the entire time
    // of query execution"); a handful per window suffices.
    EXPECT_GE(exec.transactions(), 5u) << workloadName(w);
}

TEST_P(SuiteWorkload, ControlFlowMixIsServerLike)
{
    const ServerWorkload w = GetParam();
    const Program prog = buildWorkloadProgram(w);
    Executor exec(prog, executorConfigFor(w));
    std::uint64_t branches = 0;
    std::uint64_t calls = 0;
    std::uint64_t returns = 0;
    const InstCount n = 500'000;
    for (InstCount i = 0; i < n; ++i) {
        switch (exec.next().kind) {
          case InstrKind::CondBranch: ++branches; break;
          case InstrKind::Call:       ++calls; break;
          case InstrKind::Return:
          case InstrKind::TrapReturn: ++returns; break;
          default: break;
        }
    }
    // Calls and returns balance over a long window.
    EXPECT_NEAR(static_cast<double>(calls),
                static_cast<double>(returns),
                static_cast<double>(calls) * 0.1 + 100.0);
    // Conditional branches are a visible fraction of the mix.
    EXPECT_GT(branches, n / 100);
}

INSTANTIATE_TEST_SUITE_P(
    AllSix, SuiteWorkload,
    ::testing::ValuesIn(allServerWorkloads()),
    [](const ::testing::TestParamInfo<ServerWorkload> &info) {
        std::string n = workloadGroup(info.param) +
                        workloadName(info.param);
        n.erase(std::remove(n.begin(), n.end(), ' '), n.end());
        return n;
    });

TEST(Workloads, ExecutorConfigDerivesFromParams)
{
    const WorkloadParams p = workloadParams(ServerWorkload::WebApache);
    const ExecutorConfig c = executorConfigFor(p);
    EXPECT_DOUBLE_EQ(c.interruptRate, p.interruptRate);
    EXPECT_EQ(c.maxCallDepth, p.maxCallDepth);
}

TEST(Workloads, NameParserAcceptsExactKeysAndIndices)
{
    for (ServerWorkload w : allServerWorkloads()) {
        const auto parsed = workloadFromName(workloadKey(w));
        ASSERT_TRUE(parsed.has_value()) << workloadKey(w);
        EXPECT_EQ(*parsed, w);
    }
    // Case-insensitive keys and presentation-order indices.
    ASSERT_TRUE(workloadFromName("DB2").has_value());
    EXPECT_EQ(*workloadFromName("DB2"), ServerWorkload::OltpDb2);
    ASSERT_TRUE(workloadFromName("Zeus").has_value());
    EXPECT_EQ(*workloadFromName("Zeus"), ServerWorkload::WebZeus);
    for (char idx = '0'; idx <= '5'; ++idx) {
        const auto parsed = workloadFromName(std::string(1, idx));
        ASSERT_TRUE(parsed.has_value()) << idx;
        EXPECT_EQ(*parsed, allServerWorkloads()[idx - '0']);
    }
}

TEST(Workloads, NameParserRejectsTrailingGarbage)
{
    // A script typo must fail loudly, never fuzzy-match a workload.
    const char *rejected[] = {
        "db2x",   "qry2 ",  " db2",  "zeus\t", "qry2\n", "db",
        "qry",    "zeus0",  "0x",    "06",     "6",      "-1",
        "",       " ",      "db2 x", "oracle!"};
    for (const char *name : rejected) {
        EXPECT_FALSE(workloadFromName(name).has_value())
            << "'" << name << "' parsed unexpectedly";
    }
}

TEST(Workloads, AllPresetsValidate)
{
    for (ServerWorkload w : allServerWorkloads()) {
        const auto err = validateWorkloadParams(workloadParams(w));
        EXPECT_FALSE(err.has_value())
            << workloadName(w) << ": " << err.value_or("");
    }
    // Defaults are a valid point too.
    EXPECT_FALSE(validateWorkloadParams(WorkloadParams{}).has_value());
}

TEST(Workloads, ValidateRejectsOutOfRangeParams)
{
    const WorkloadParams good = workloadParams(ServerWorkload::OltpDb2);

    WorkloadParams p = good;
    p.appFunctions = p.transactions + 1;
    EXPECT_TRUE(validateWorkloadParams(p).has_value());

    p = good;
    p.handlers = 0;
    EXPECT_TRUE(validateWorkloadParams(p).has_value());

    p = good;
    p.libFunctions = 1;
    EXPECT_TRUE(validateWorkloadParams(p).has_value());

    p = good;
    p.condDensity = 1.2;
    EXPECT_TRUE(validateWorkloadParams(p).has_value());

    p = good;
    p.callDensity = 0.5;
    p.condDensity = 0.4;
    p.jumpDensity = 0.2;  // densities sum past 1
    EXPECT_TRUE(validateWorkloadParams(p).has_value());

    p = good;
    p.dataDepLo = 0.8;
    p.dataDepHi = 0.3;  // inverted interval
    EXPECT_TRUE(validateWorkloadParams(p).has_value());

    p = good;
    p.meanFnBlocks = 0.5;
    EXPECT_TRUE(validateWorkloadParams(p).has_value());

    p = good;
    p.meanHandlerBlocks = 1.0e12;  // would hang Rng::geometric
    EXPECT_TRUE(validateWorkloadParams(p).has_value());

    p = good;
    p.appFunctions = 3'000'000'000u;  // would OOM the generator
    EXPECT_TRUE(validateWorkloadParams(p).has_value());

    p = good;
    p.meanFnBlocks = static_cast<double>(p.maxFnBlocks) + 1.0;
    EXPECT_TRUE(validateWorkloadParams(p).has_value());

    p = good;
    p.zipfS = -0.1;
    EXPECT_TRUE(validateWorkloadParams(p).has_value());

    p = good;
    p.interruptRate = 0.5;
    EXPECT_TRUE(validateWorkloadParams(p).has_value());

    p = good;
    p.callLayers = 0;
    EXPECT_TRUE(validateWorkloadParams(p).has_value());

    p = good;
    p.maxCallDepth = 0;
    EXPECT_TRUE(validateWorkloadParams(p).has_value());
}

} // namespace
} // namespace pifetch
