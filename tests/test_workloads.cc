/**
 * @file
 * Server-suite workload property tests.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "sim/workloads.hh"

namespace pifetch {
namespace {

/** Parameterized over all six workloads. */
class SuiteWorkload : public ::testing::TestWithParam<ServerWorkload>
{
};

TEST_P(SuiteWorkload, ExecutesWithoutDiscontinuities)
{
    const ServerWorkload w = GetParam();
    const Program prog = buildWorkloadProgram(w);
    Executor exec(prog, executorConfigFor(w));

    RetiredInstr prev = exec.next();
    for (int i = 0; i < 100'000; ++i) {
        const RetiredInstr cur = exec.next();
        if (cur.trapLevel == prev.trapLevel) {
            ASSERT_EQ(cur.pc, prev.nextPc())
                << workloadName(w) << " discontinuity at " << i;
        }
        ASSERT_LT(cur.pc, prog.codeEnd);
        prev = cur;
    }
}

TEST_P(SuiteWorkload, DynamicFootprintExceedsL1i)
{
    const ServerWorkload w = GetParam();
    const Program prog = buildWorkloadProgram(w);
    Executor exec(prog, executorConfigFor(w));
    // Skip warmup, then measure the touched set over a window.
    for (int i = 0; i < 500'000; ++i)
        exec.next();
    std::unordered_set<Addr> blocks;
    for (int i = 0; i < 2'000'000; ++i)
        blocks.insert(blockAddr(exec.next().pc));
    // Table I's premise: working sets dwarf the 1024-block L1-I.
    // (Staying modestly above suffices for the DSS kernels.)
    EXPECT_GT(blocks.size() * blockBytes, 40u * 1024)
        << workloadName(w);
}

TEST_P(SuiteWorkload, InterruptsOccurAtPresetRate)
{
    const ServerWorkload w = GetParam();
    const WorkloadParams params = workloadParams(w);
    const Program prog = buildWorkloadProgram(w);
    Executor exec(prog, executorConfigFor(w));
    const InstCount n = 2'000'000;
    exec.run(n, [](const RetiredInstr &) {});
    const double rate = static_cast<double>(exec.interrupts()) /
                        static_cast<double>(n);
    EXPECT_GT(rate, params.interruptRate * 0.4) << workloadName(w);
    EXPECT_LT(rate, params.interruptRate * 2.5) << workloadName(w);
}

TEST_P(SuiteWorkload, TransactionsComplete)
{
    const ServerWorkload w = GetParam();
    const Program prog = buildWorkloadProgram(w);
    Executor exec(prog, executorConfigFor(w));
    exec.run(3'000'000, [](const RetiredInstr &) {});
    // DSS queries run hundreds of thousands of instructions each
    // ("for the DSS workloads, we collect traces for the entire time
    // of query execution"); a handful per window suffices.
    EXPECT_GE(exec.transactions(), 5u) << workloadName(w);
}

TEST_P(SuiteWorkload, ControlFlowMixIsServerLike)
{
    const ServerWorkload w = GetParam();
    const Program prog = buildWorkloadProgram(w);
    Executor exec(prog, executorConfigFor(w));
    std::uint64_t branches = 0;
    std::uint64_t calls = 0;
    std::uint64_t returns = 0;
    const InstCount n = 500'000;
    for (InstCount i = 0; i < n; ++i) {
        switch (exec.next().kind) {
          case InstrKind::CondBranch: ++branches; break;
          case InstrKind::Call:       ++calls; break;
          case InstrKind::Return:
          case InstrKind::TrapReturn: ++returns; break;
          default: break;
        }
    }
    // Calls and returns balance over a long window.
    EXPECT_NEAR(static_cast<double>(calls),
                static_cast<double>(returns),
                static_cast<double>(calls) * 0.1 + 100.0);
    // Conditional branches are a visible fraction of the mix.
    EXPECT_GT(branches, n / 100);
}

INSTANTIATE_TEST_SUITE_P(
    AllSix, SuiteWorkload,
    ::testing::ValuesIn(allServerWorkloads()),
    [](const ::testing::TestParamInfo<ServerWorkload> &info) {
        std::string n = workloadGroup(info.param) +
                        workloadName(info.param);
        n.erase(std::remove(n.begin(), n.end(), ' '), n.end());
        return n;
    });

TEST(Workloads, ExecutorConfigDerivesFromParams)
{
    const WorkloadParams p = workloadParams(ServerWorkload::WebApache);
    const ExecutorConfig c = executorConfigFor(p);
    EXPECT_DOUBLE_EQ(c.interruptRate, p.interruptRate);
    EXPECT_EQ(c.maxCallDepth, p.maxCallDepth);
}

} // namespace
} // namespace pifetch
