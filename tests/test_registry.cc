/**
 * @file
 * Experiment-registry tests: lookup, document shape, config
 * overrides, and the thread-count invariance the CLI and golden
 * suite rely on.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/registry.hh"

namespace pifetch {
namespace {

RunOptions
tinyOptions()
{
    RunOptions opts;
    ExperimentBudget b;
    b.warmup = 60'000;
    b.measure = 120'000;
    opts.budget = b;
    opts.workloads = {ServerWorkload::OltpDb2};
    return opts;
}

TEST(Registry, NamesAreUniqueAndFindable)
{
    std::set<std::string> names;
    for (const ExperimentSpec &spec : experimentRegistry()) {
        EXPECT_FALSE(spec.name.empty());
        EXPECT_FALSE(spec.description.empty());
        EXPECT_TRUE(names.insert(spec.name).second)
            << "duplicate " << spec.name;
        EXPECT_EQ(findExperiment(spec.name), &spec);
        EXPECT_FALSE(spec.defaultWorkloads.empty());
        ASSERT_TRUE(static_cast<bool>(spec.run));
    }
    EXPECT_EQ(findExperiment("no-such-experiment"), nullptr);
    // The paper's full evaluation: figures, the table, the ablation.
    for (const char *required :
         {"table1", "fig2-streams", "fig3-regions", "fig7-jumpdist",
          "fig8-offsets", "fig8-regionsize", "fig9-streamlen",
          "fig9-history", "fig10-coverage", "fig10-speedup",
          "ablation"}) {
        EXPECT_NE(findExperiment(required), nullptr) << required;
    }
}

TEST(Registry, DocumentHasTheConventionShape)
{
    const ExperimentSpec *spec = findExperiment("fig2-streams");
    ASSERT_NE(spec, nullptr);
    const ResultValue doc = runExperiment(*spec, tinyOptions());

    EXPECT_EQ(doc.find("experiment")->str(), "fig2-streams");
    EXPECT_FALSE(doc.find("description")->str().empty());
    const ResultValue *meta = doc.find("meta");
    ASSERT_NE(meta, nullptr);
    EXPECT_EQ(meta->find("seed")->uintValue(), 42u);
    EXPECT_EQ(meta->find("warmup")->uintValue(), 60'000u);
    EXPECT_EQ(meta->find("measure")->uintValue(), 120'000u);
    EXPECT_GE(meta->find("threads")->uintValue(), 1u);
    EXPECT_FALSE(meta->find("git")->str().empty());
    ASSERT_NE(meta->find("config"), nullptr);
    EXPECT_EQ(meta->find("workloads")->at(0).str(), "db2");

    const ResultValue *tables = doc.find("tables");
    ASSERT_NE(tables, nullptr);
    ASSERT_GT(tables->size(), 0u);
    const ResultValue &t = tables->at(0);
    ASSERT_NE(t.find("columns"), nullptr);
    const ResultValue *rows = t.find("rows");
    ASSERT_NE(rows, nullptr);
    ASSERT_EQ(rows->size(), 1u);  // one selected workload
    EXPECT_EQ(rows->at(0).size(), t.find("columns")->size());
    EXPECT_EQ(rows->at(0).at(1).str(), "DB2");
}

TEST(Registry, AnalysisExperimentRunsFromMeasureBudget)
{
    const ExperimentSpec *spec = findExperiment("fig3-regions");
    ASSERT_NE(spec, nullptr);
    const ResultValue doc = runExperiment(*spec, tinyOptions());
    const ResultValue *tables = doc.find("tables");
    ASSERT_NE(tables, nullptr);
    EXPECT_EQ(tables->size(), 2u);  // density + groups
}

TEST(Registry, ResultsAreThreadCountInvariant)
{
    const ExperimentSpec *spec = findExperiment("fig10-coverage");
    ASSERT_NE(spec, nullptr);
    RunOptions serial = tinyOptions();
    serial.cfg.threads = 1;
    RunOptions pooled = tinyOptions();
    pooled.cfg.threads = 4;

    ResultValue a = runExperiment(*spec, serial);
    ResultValue b = runExperiment(*spec, pooled);
    // The resolved thread count is the only legitimate difference.
    a.find("meta")->set("threads", 0u);
    b.find("meta")->set("threads", 0u);
    EXPECT_EQ(toJson(a), toJson(b));
}

TEST(ConfigOverrides, ApplyParseAndReject)
{
    SystemConfig cfg;
    EXPECT_TRUE(applyConfigOverride(cfg, "pif.historyRegions", "1024"));
    EXPECT_EQ(cfg.pif.historyRegions, 1024u);
    EXPECT_TRUE(applyConfigOverride(cfg, "seed", "0x10"));
    EXPECT_EQ(cfg.seed, 16u);
    EXPECT_TRUE(applyConfigOverride(cfg, "pif.separateTrapLevels",
                                    "off"));
    EXPECT_FALSE(cfg.pif.separateTrapLevels);
    EXPECT_TRUE(applyConfigOverride(cfg, "trap.perInstrProbability",
                                    "1e-4"));
    EXPECT_DOUBLE_EQ(cfg.trap.perInstrProbability, 1e-4);
    EXPECT_TRUE(applyConfigOverride(cfg, "nextLine.degree", "8"));
    EXPECT_EQ(cfg.nextLine.degree, 8u);

    EXPECT_FALSE(applyConfigOverride(cfg, "no.such.key", "1"));
    EXPECT_FALSE(applyConfigOverride(cfg, "seed", "notanumber"));
    EXPECT_FALSE(applyConfigOverride(cfg, "pif.separateTrapLevels",
                                     "maybe"));

    // Every advertised key accepts at least one sensible value.
    for (const std::string &key : configOverrideKeys()) {
        SystemConfig scratch;
        const bool ok = applyConfigOverride(scratch, key, "1") ||
                        applyConfigOverride(scratch, key, "true");
        EXPECT_TRUE(ok) << key;
    }
}

TEST(GoldenEntries, ReferenceRegisteredExperiments)
{
    ASSERT_FALSE(goldenSuite().empty());
    for (const GoldenEntry &e : goldenSuite()) {
        EXPECT_NE(findExperiment(e.experiment), nullptr)
            << e.experiment;
        ASSERT_TRUE(e.options.budget.has_value());
        EXPECT_LE(e.options.budget->measure, 1'000'000u);
        EXPECT_FALSE(e.options.workloads.empty());
    }
}

} // namespace
} // namespace pifetch
