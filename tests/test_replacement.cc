/**
 * @file
 * Replacement policy tests.
 */

#include <gtest/gtest.h>

#include "cache/replacement.hh"

namespace pifetch {
namespace {

TEST(LruPolicy, VictimIsLeastRecentlyTouched)
{
    LruPolicy lru(1, 4);
    lru.touch(0, 0);
    lru.touch(0, 1);
    lru.touch(0, 2);
    lru.touch(0, 3);
    lru.touch(0, 0);  // refresh way 0
    EXPECT_EQ(lru.victim(0), 1u);
}

TEST(LruPolicy, SetsAreIndependent)
{
    LruPolicy lru(2, 2);
    lru.touch(0, 0);
    lru.touch(0, 1);
    lru.touch(1, 1);
    lru.touch(1, 0);
    EXPECT_EQ(lru.victim(0), 0u);
    EXPECT_EQ(lru.victim(1), 1u);
}

TEST(LruPolicy, ResetForgetsHistory)
{
    LruPolicy lru(1, 2);
    lru.touch(0, 1);
    lru.reset();
    // After reset both stamps are zero; way 0 (first minimum) wins.
    EXPECT_EQ(lru.victim(0), 0u);
}

TEST(RandomPolicy, DeterministicForSeed)
{
    RandomPolicy a(1, 8, 99);
    RandomPolicy b(1, 8, 99);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(a.victim(0), b.victim(0));
}

TEST(RandomPolicy, CoversAllWays)
{
    RandomPolicy p(1, 4, 7);
    bool seen[4] = {false, false, false, false};
    for (int i = 0; i < 200; ++i)
        seen[p.victim(0)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(RandomPolicy, ResetRestartsSequence)
{
    RandomPolicy p(1, 8, 123);
    std::vector<unsigned> first;
    for (int i = 0; i < 16; ++i)
        first.push_back(p.victim(0));
    p.reset();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(p.victim(0), first[static_cast<size_t>(i)]);
}

TEST(MakeReplacement, FactoryProducesRequestedKinds)
{
    auto lru = makeReplacement(ReplacementKind::LRU, 4, 2);
    auto rnd = makeReplacement(ReplacementKind::Random, 4, 2);
    EXPECT_NE(dynamic_cast<LruPolicy *>(lru.get()), nullptr);
    EXPECT_NE(dynamic_cast<RandomPolicy *>(rnd.get()), nullptr);
}

} // namespace
} // namespace pifetch
