/**
 * @file
 * Statistics infrastructure tests.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hh"

namespace pifetch {
namespace {

TEST(Counter, StartsAtZeroAndIncrements)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 5;
    EXPECT_EQ(c.value(), 6u);
}

TEST(Counter, ResetZeroes)
{
    Counter c;
    c += 42;
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(StatGroup, DumpIncludesNameValueAndDescription)
{
    StatGroup g("l1i");
    Counter hits(g, "hits", "demand hits");
    ++hits;
    ++hits;
    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("l1i.hits 2"), std::string::npos);
    EXPECT_NE(os.str().find("demand hits"), std::string::npos);
}

TEST(StatGroup, ResetAllClearsEveryCounter)
{
    StatGroup g("x");
    Counter a(g, "a", "");
    Counter b(g, "b", "");
    a += 3;
    b += 4;
    g.resetAll();
    EXPECT_EQ(a.value(), 0u);
    EXPECT_EQ(b.value(), 0u);
}

TEST(Ratio, HandlesZeroDenominator)
{
    EXPECT_DOUBLE_EQ(ratio(5, 0), 0.0);
    EXPECT_DOUBLE_EQ(ratio(1, 2), 0.5);
}

TEST(Percent, Formats)
{
    EXPECT_EQ(percent(0.5), "50.00%");
    EXPECT_EQ(percent(0.999), "99.90%");
    EXPECT_EQ(percent(0.0), "0.00%");
}

} // namespace
} // namespace pifetch
