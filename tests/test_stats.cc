/**
 * @file
 * Statistics infrastructure tests.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/stats.hh"

namespace pifetch {
namespace {

TEST(Counter, StartsAtZeroAndIncrements)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 5;
    EXPECT_EQ(c.value(), 6u);
}

TEST(Counter, ResetZeroes)
{
    Counter c;
    c += 42;
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(StatGroup, DumpIncludesNameValueAndDescription)
{
    StatGroup g("l1i");
    Counter hits(g, "hits", "demand hits");
    ++hits;
    ++hits;
    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("l1i.hits 2"), std::string::npos);
    EXPECT_NE(os.str().find("demand hits"), std::string::npos);
}

TEST(StatGroup, ResetAllClearsEveryCounter)
{
    StatGroup g("x");
    Counter a(g, "a", "");
    Counter b(g, "b", "");
    a += 3;
    b += 4;
    g.resetAll();
    EXPECT_EQ(a.value(), 0u);
    EXPECT_EQ(b.value(), 0u);
}

// Regression tests for the dangling-enrollment hazard: a registered
// Counter that was copied or moved used to leave a stale pointer in
// its StatGroup (e.g. after a std::vector reallocation), so dump()
// read freed memory. Counters are now move-only and keep their
// enrollment consistent.

TEST(CounterLifetime, CopyingIsDisabled)
{
    static_assert(!std::is_copy_constructible<Counter>::value,
                  "a copied registered counter would dangle or "
                  "double-report");
    static_assert(!std::is_copy_assignable<Counter>::value, "");
    static_assert(std::is_nothrow_move_constructible<Counter>::value,
                  "vectors of counters must move on reallocation");
    static_assert(!std::is_copy_constructible<StatGroup>::value,
                  "counters hold back-pointers to their group");
}

TEST(CounterLifetime, MoveTransfersEnrollment)
{
    StatGroup g("grp");
    Counter a(g, "a", "moved-from");
    a += 7;

    Counter b(std::move(a));
    EXPECT_EQ(b.value(), 7u);
    EXPECT_EQ(b.group(), &g);
    EXPECT_EQ(a.group(), nullptr);  // NOLINT: inspecting moved-from

    ASSERT_EQ(g.counters().size(), 1u);
    EXPECT_EQ(g.counters()[0], &b);

    ++b;
    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("grp.a 8"), std::string::npos);
}

TEST(CounterLifetime, MoveAssignUnenrollsTheOverwrittenCounter)
{
    StatGroup g("grp");
    Counter a(g, "a", "");
    Counter b(g, "b", "");
    a += 1;
    b += 2;
    ASSERT_EQ(g.counters().size(), 2u);

    a = std::move(b);  // "a" the enrollment dies; "b" follows the move
    ASSERT_EQ(g.counters().size(), 1u);
    EXPECT_EQ(g.counters()[0], &a);
    EXPECT_EQ(a.name(), "b");
    EXPECT_EQ(a.value(), 2u);

    std::ostringstream os;
    g.dump(os);
    EXPECT_EQ(os.str(), "grp.b 2  # \n");
}

TEST(CounterLifetime, DestructionUnenrolls)
{
    StatGroup g("grp");
    Counter keep(g, "keep", "");
    {
        Counter temp(g, "temp", "");
        temp += 5;
        ASSERT_EQ(g.counters().size(), 2u);
    }
    ASSERT_EQ(g.counters().size(), 1u);
    std::ostringstream os;
    g.dump(os);  // would read freed memory before the fix (ASan)
    EXPECT_EQ(os.str().find("temp"), std::string::npos);
}

TEST(CounterLifetime, VectorReallocationKeepsEnrollmentsValid)
{
    StatGroup g("vec");
    std::vector<Counter> counters;
    for (int i = 0; i < 64; ++i) {
        // Growth forces reallocations; every move must re-enroll.
        counters.emplace_back(g, "c" + std::to_string(i), "");
        counters.back() += static_cast<std::uint64_t>(i);
    }
    ASSERT_EQ(g.counters().size(), counters.size());
    for (std::size_t i = 0; i < counters.size(); ++i)
        EXPECT_EQ(g.counters()[i], &counters[i]) << i;

    g.resetAll();  // touches every pointer; dies on any stale one
    for (const Counter &c : counters)
        EXPECT_EQ(c.value(), 0u);
}

TEST(CounterLifetime, UnregisteredCountersStayGroupless)
{
    Counter free_counter;
    ++free_counter;
    EXPECT_EQ(free_counter.group(), nullptr);
    Counter moved(std::move(free_counter));
    EXPECT_EQ(moved.group(), nullptr);
    EXPECT_EQ(moved.value(), 1u);
}

TEST(Ratio, HandlesZeroDenominator)
{
    EXPECT_DOUBLE_EQ(ratio(5, 0), 0.0);
    EXPECT_DOUBLE_EQ(ratio(1, 2), 0.5);
}

TEST(Percent, Formats)
{
    EXPECT_EQ(percent(0.5), "50.00%");
    EXPECT_EQ(percent(0.999), "99.90%");
    EXPECT_EQ(percent(0.0), "0.00%");
}

} // namespace
} // namespace pifetch
