/**
 * @file
 * Storage-cost model tests.
 */

#include <gtest/gtest.h>

#include "pif/storage.hh"

namespace pifetch {
namespace {

TEST(Storage, RegionRecordBits)
{
    PifConfig cfg;  // 2 + 5 neighbours
    // 40-bit PC + 7 neighbour bits + tag bit.
    EXPECT_EQ(regionRecordBits(cfg, 40), 48u);
}

TEST(Storage, HistoryDominates)
{
    const PifConfig cfg;
    const PifStorage s = computePifStorage(cfg);
    EXPECT_GT(s.historyBits, s.indexBits);
    EXPECT_GT(s.historyBits, s.sabBits);
    EXPECT_GT(s.historyBits, s.compactorBits);
    // 32K records x 48 bits = 1.5 Mbit = 192 KiB of history — the
    // "considerable chip real-estate" of Section 5.4.
    EXPECT_EQ(s.historyBits, 32u * 1024 * 48);
    EXPECT_NEAR(s.totalKiB(), 192.0, 72.0);
}

TEST(Storage, GrowsWithRegionWidth)
{
    PifConfig narrow;
    narrow.blocksBefore = 0;
    narrow.blocksAfter = 0;
    PifConfig wide;
    wide.blocksBefore = 2;
    wide.blocksAfter = 5;
    EXPECT_LT(computePifStorage(narrow).totalBits(),
              computePifStorage(wide).totalBits());
}

TEST(Storage, ScalesLinearlyWithHistoryCapacity)
{
    PifConfig small_cfg;
    small_cfg.historyRegions = 2048;
    PifConfig big_cfg;
    big_cfg.historyRegions = 4096;
    const std::uint64_t small_hist =
        computePifStorage(small_cfg).historyBits;
    const std::uint64_t big_hist =
        computePifStorage(big_cfg).historyBits;
    EXPECT_EQ(big_hist, 2 * small_hist);
}

TEST(Storage, PifCompactionBeatsTifsPerEntry)
{
    // At equal stream-capacity (32K regions vs 32K block addresses),
    // a PIF record covers up to 8 blocks while a TIFS entry covers
    // one, so PIF stores far more reach per bit. Compare reach/bits.
    const PifConfig pif;
    const TifsConfig tifs;
    const double pif_blocks_per_bit =
        static_cast<double>(pif.historyRegions * pif.regionBlocks()) /
        static_cast<double>(computePifStorage(pif).historyBits);
    const double tifs_blocks_per_bit =
        static_cast<double>(tifs.historyEntries) /
        static_cast<double>(tifs.historyEntries * 34);
    EXPECT_GT(pif_blocks_per_bit, 2.0 * tifs_blocks_per_bit);
}

TEST(Storage, CombinedTrapChainIsCheaper)
{
    PifConfig sep;
    sep.separateTrapLevels = true;
    PifConfig combined = sep;
    combined.separateTrapLevels = false;
    EXPECT_LT(computePifStorage(combined).compactorBits,
              computePifStorage(sep).compactorBits);
}

TEST(Storage, TifsTotalIsPositiveAndHistoryDominated)
{
    const TifsConfig cfg;
    const std::uint64_t total = tifsStorageBits(cfg);
    EXPECT_GT(total, cfg.historyEntries * 34);
    EXPECT_LT(total, 2 * cfg.historyEntries * 34);
}

} // namespace
} // namespace pifetch
