/**
 * @file
 * Event-store and query-engine tests: recording semantics and
 * determinism, every query operator against a hand-computed fixture,
 * the JSON dump round trip, and the empty-store / overflow-cap edges.
 */

#include <gtest/gtest.h>

#include "query/event_store.hh"
#include "query/query.hh"
#include "sim/trace_engine.hh"
#include "sim/workloads.hh"

namespace pifetch {
namespace {

// ------------------------------------------------------------- fixture

/**
 * A ten-slice, twelve-counter-row store recorded by hand, so every
 * query expectation below is computable on paper:
 *
 *   instr 1: retire pc 0x1000 (block 64);  fetch  64 miss
 *   instr 2: retire pc 0x1040 (block 65);  fetch  65 hit prefetched;
 *            counter sample A; prefetch fill of block 66
 *   instr 3: retire pc 0x2000 (block 128); fetch 128 miss;
 *            wrong-path fetch 129 hit
 *   instr 4: retire pc 0x2004 trap 1;      fetch 128 hit trap 1;
 *            counter sample B
 *
 * Blocks 64-66 share 8-block region 8; 128/129 are region 16.
 */
EventStore
fixtureStore()
{
    EventStoreOptions opts;
    opts.counterWindow = 2;
    opts.recordRetires = true;
    EventStore s(opts);

    const auto retire = [&](Addr pc, TrapLevel trap) {
        RetiredInstr ri;
        ri.pc = pc;
        ri.trapLevel = trap;
        s.recordRetire(0, ri);
    };
    const auto fetch = [&](Addr block, bool correct, bool hit,
                           bool prefetched, TrapLevel trap, Addr pc) {
        FetchAccess fa;
        fa.block = block;
        fa.correctPath = correct;
        fa.hit = hit;
        fa.wasPrefetched = prefetched;
        fa.trapLevel = trap;
        s.recordAccess(0, fa, pc);
    };
    const auto sample = [&](std::uint64_t accesses, std::uint64_t misses,
                            std::uint64_t wrong, std::uint64_t mispred,
                            std::uint64_t irqs, std::uint64_t fills) {
        CounterSnapshot snap;
        snap.accesses = accesses;
        snap.misses = misses;
        snap.wrongPathFetches = wrong;
        snap.mispredicts = mispred;
        snap.interrupts = irqs;
        snap.prefetchFills = fills;
        s.sampleCounters(0, snap);
    };

    retire(0x1000, 0);
    EXPECT_FALSE(s.counterSampleDue(0));
    fetch(64, true, false, false, 0, 0x1000);

    retire(0x1040, 0);
    fetch(65, true, true, true, 0, 0x1040);
    EXPECT_TRUE(s.counterSampleDue(0));
    sample(2, 1, 0, 0, 0, 1);
    s.recordPrefetchFill(0, 66);

    retire(0x2000, 0);
    fetch(128, true, false, false, 0, 0x2000);
    fetch(129, false, true, false, 0, blockBase(129));
    EXPECT_FALSE(s.counterSampleDue(0));

    retire(0x2004, 1);
    fetch(128, true, true, false, 1, 0x2004);
    EXPECT_TRUE(s.counterSampleDue(0));
    sample(5, 2, 1, 1, 0, 1);
    return s;
}

/** Run @p text against @p store; fails the test on any error. */
ResultValue
ask(const EventStore &store, const std::string &text)
{
    std::string err;
    const auto q = parseQuery(text, &err);
    EXPECT_TRUE(q.has_value()) << text << ": " << err;
    if (!q)
        return ResultValue::object();
    const auto table = runQuery(store, *q, &err);
    EXPECT_TRUE(table.has_value()) << text << ": " << err;
    return table ? *table : ResultValue::object();
}

std::size_t
rowCount(const ResultValue &table)
{
    const ResultValue *rows = table.find("rows");
    return rows ? rows->size() : 0;
}

const ResultValue &
cell(const ResultValue &table, std::size_t row, std::size_t col)
{
    return table.find("rows")->at(row).at(col);
}

// ----------------------------------------------------------- recording

TEST(EventStore, RecordingIsDeterministic)
{
    const std::string a = toJson(toResult(fixtureStore()), 0);
    const std::string b = toJson(toResult(fixtureStore()), 0);
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("pifetch-events-v1"), std::string::npos);
}

TEST(EventStore, FixtureHasTheHandCountedShape)
{
    const EventStore s = fixtureStore();
    EXPECT_EQ(s.sliceCount(), 10u);
    EXPECT_EQ(s.counterCount(), 12u);
    EXPECT_EQ(s.droppedSlices(), 0u);
    EXPECT_EQ(s.retired(0), 4u);
    EXPECT_EQ(s.retired(7), 0u);  // never-seen core reads as zero
    EXPECT_EQ(s.coresSeen(), 1u);

    // Wrong-path rows carry the block base as their pc, correct-path
    // rows the triggering instruction's pc.
    const EventStore &cs = s;
    bool sawWrongPath = false;
    for (std::size_t i = 0; i < cs.sliceCount(); ++i) {
        if (cs.sliceCorrect()[i])
            continue;
        sawWrongPath = true;
        EXPECT_EQ(cs.slicePc()[i], blockBase(cs.sliceBlock()[i]));
    }
    EXPECT_TRUE(sawWrongPath);
}

TEST(EventStore, KindAndCounterKeysRoundTrip)
{
    for (const EventKind k :
         {EventKind::Retire, EventKind::Fetch, EventKind::Prefetch}) {
        const auto parsed = eventKindFromKey(eventKindKey(k));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, k);
    }
    for (unsigned c = 0; c < numEventCounters; ++c) {
        const auto counter = static_cast<EventCounter>(c);
        const auto parsed =
            eventCounterFromKey(eventCounterKey(counter));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, counter);
    }
    EXPECT_FALSE(eventKindFromKey("fetches").has_value());
    EXPECT_FALSE(eventCounterFromKey("access").has_value());
}

TEST(EventStore, DisabledTablesRecordNothing)
{
    EventStoreOptions opts;
    opts.recordFetches = false;
    opts.recordPrefetches = false;
    opts.counterWindow = 0;
    EventStore s(opts);
    RetiredInstr ri;
    ri.pc = 0x1000;
    s.recordRetire(0, ri);
    FetchAccess fa;
    fa.block = 64;
    s.recordAccess(0, fa, 0x1000);
    s.recordPrefetchFill(0, 65);
    EXPECT_FALSE(s.counterSampleDue(0));
    EXPECT_EQ(s.sliceCount(), 0u);
    EXPECT_EQ(s.retired(0), 1u);  // the instr index still advances
}

TEST(EventStore, OverflowCapDropsAndCounts)
{
    EventStoreOptions opts;
    opts.counterWindow = 2;
    opts.recordRetires = true;
    opts.maxSlices = 3;
    EventStore s(opts);
    RetiredInstr ri;
    FetchAccess fa;
    for (int i = 0; i < 4; ++i) {
        ri.pc = 0x1000 + 4u * static_cast<unsigned>(i);
        s.recordRetire(0, ri);
        fa.block = blockAddr(ri.pc);
        s.recordAccess(0, fa, ri.pc);
        if (s.counterSampleDue(0))
            s.sampleCounters(0, CounterSnapshot{});
    }
    EXPECT_EQ(s.sliceCount(), 3u);
    EXPECT_EQ(s.droppedSlices(), 5u);
    // Counter samples are never capped.
    EXPECT_EQ(s.counterCount(), 2u * numEventCounters);

    // The cap survives the dump round trip.
    const ResultValue dump = toResult(s);
    EXPECT_EQ(dump.find("dropped_slices")->uintValue(), 5u);

    s.clear();
    EXPECT_EQ(s.sliceCount(), 0u);
    EXPECT_EQ(s.droppedSlices(), 0u);
    EXPECT_EQ(s.coresSeen(), 0u);
}

// ----------------------------------------------------------- round trip

TEST(EventStore, JsonDumpRoundTripsExactly)
{
    const EventStore s = fixtureStore();
    const std::string json = toJson(toResult(s), 2);
    std::string err;
    const auto doc = parseJson(json, &err);
    ASSERT_TRUE(doc.has_value()) << err;
    const auto loaded = eventStoreFromResult(*doc, &err);
    ASSERT_TRUE(loaded.has_value()) << err;
    EXPECT_EQ(toJson(toResult(*loaded), 2), json);
    EXPECT_EQ(loaded->retired(0), 4u);
    EXPECT_EQ(loaded->options().counterWindow, 2u);
}

TEST(EventStore, LoaderRejectsMalformedDumps)
{
    std::string err;
    EXPECT_FALSE(eventStoreFromResult(ResultValue("nope"), &err)
                     .has_value());
    EXPECT_FALSE(err.empty());

    ResultValue bad = toResult(fixtureStore());
    bad.set("schema", "pifetch-events-v0");
    EXPECT_FALSE(eventStoreFromResult(bad, &err).has_value());
    EXPECT_NE(err.find("schema"), std::string::npos) << err;

    // A truncated column (ragged table) must refuse to load.
    bad = toResult(fixtureStore());
    ResultValue shorter = ResultValue::array();
    const ResultValue *hit = bad.find("slices")->find("hit");
    for (std::size_t i = 0; i + 1 < hit->size(); ++i)
        shorter.push(hit->at(i).uintValue());
    bad.find("slices")->set("hit", std::move(shorter));
    EXPECT_FALSE(eventStoreFromResult(bad, &err).has_value());
    EXPECT_FALSE(err.empty());

    // An out-of-range kind byte must refuse to load, not wrap into
    // a valid row class.
    bad = toResult(fixtureStore());
    ResultValue kinds = ResultValue::array();
    const ResultValue *kind = bad.find("slices")->find("kind");
    for (std::size_t i = 0; i < kind->size(); ++i)
        kinds.push(i == 0 ? 9u : kind->at(i).uintValue());
    bad.find("slices")->set("kind", std::move(kinds));
    EXPECT_FALSE(eventStoreFromResult(bad, &err).has_value());
    EXPECT_FALSE(err.empty());
}

// ------------------------------------------------------------- parsing

TEST(Query, ParseAndCanonicalTextRoundTrip)
{
    const char *texts[] = {
        "select kind, count() from slices group by kind",
        "select count() from slices where hit == true and "
        "kind == fetch",
        "select window, sum(value) from counters where "
        "counter == accesses group by window window 1024",
        "select instr, pc, block from slices where region != 8",
        "select min(instr), max(instr), avg(value) from counters",
    };
    for (const char *text : texts) {
        std::string err;
        const auto q = parseQuery(text, &err);
        ASSERT_TRUE(q.has_value()) << text << ": " << err;
        // queryText is canonical: it parses back to itself.
        const std::string canon = queryText(*q);
        const auto again = parseQuery(canon, &err);
        ASSERT_TRUE(again.has_value()) << canon << ": " << err;
        EXPECT_EQ(queryText(*again), canon);
    }
}

TEST(Query, ParserRejectsBadInput)
{
    const char *bad[] = {
        "",
        "select",
        "select from slices",
        "select count() from nowhere",
        "select bogus from slices",
        "select count() from slices where hit == maybe",
        "select count() from slices where kind == accesses",
        "select count() from counters where counter == fetch",
        "select median(instr) from slices",
        "select count(instr) from slices",
        "select count() from slices group by",
        "select count() from slices window 0",
        "select count() from slices trailing",
        "select count() from slices where instr == 99999999999999999999",
    };
    for (const char *text : bad) {
        std::string err;
        EXPECT_FALSE(parseQuery(text, &err).has_value()) << text;
        EXPECT_FALSE(err.empty()) << text;
    }
}

TEST(Query, RunRejectsSemanticErrors)
{
    const EventStore s = fixtureStore();
    std::string err;

    // The window column without a window clause is a run-time error
    // (hand-built Query structs can hit it without the parser).
    Query q;
    q.select.push_back({false, QueryAgg::Count, "window"});
    EXPECT_FALSE(runQuery(s, q, &err).has_value());
    EXPECT_NE(err.find("window"), std::string::npos) << err;

    // A plain select item missing from group by.
    const auto parsed = parseQuery(
        "select pc, count() from slices group by kind");
    ASSERT_TRUE(parsed.has_value());
    EXPECT_FALSE(runQuery(s, *parsed, &err).has_value());
    EXPECT_NE(err.find("group by"), std::string::npos) << err;

    // Group by without any aggregate.
    const auto grouped =
        parseQuery("select kind from slices group by kind");
    ASSERT_TRUE(grouped.has_value());
    EXPECT_FALSE(runQuery(s, *grouped, &err).has_value());
    EXPECT_NE(err.find("aggregate"), std::string::npos) << err;

    // Empty select list (unreachable through the parser).
    EXPECT_FALSE(runQuery(s, Query{}, &err).has_value());
}

// ------------------------------------------------------------ operators

TEST(Query, GroupByKindMatchesHandCount)
{
    const ResultValue t = ask(
        fixtureStore(),
        "select kind, count() from slices group by kind");
    ASSERT_EQ(rowCount(t), 3u);
    EXPECT_EQ(cell(t, 0, 0).str(), "retire");
    EXPECT_EQ(cell(t, 0, 1).uintValue(), 4u);
    EXPECT_EQ(cell(t, 1, 0).str(), "fetch");
    EXPECT_EQ(cell(t, 1, 1).uintValue(), 5u);
    EXPECT_EQ(cell(t, 2, 0).str(), "prefetch");
    EXPECT_EQ(cell(t, 2, 1).uintValue(), 1u);
}

TEST(Query, EveryComparisonOperatorMatchesHandCount)
{
    const EventStore s = fixtureStore();
    const auto countWhere = [&](const std::string &pred) {
        const ResultValue t =
            ask(s, "select count() from slices where " + pred);
        return rowCount(t) == 1 ? cell(t, 0, 0).uintValue() : ~0ull;
    };
    EXPECT_EQ(countWhere("instr == 2"), 3u);
    EXPECT_EQ(countWhere("instr != 2"), 7u);
    EXPECT_EQ(countWhere("instr < 2"), 2u);
    EXPECT_EQ(countWhere("instr <= 2"), 5u);
    EXPECT_EQ(countWhere("instr > 2"), 5u);
    EXPECT_EQ(countWhere("instr >= 2"), 8u);
}

TEST(Query, FlagKindAndTrapPredicatesMatchHandCount)
{
    const EventStore s = fixtureStore();
    const auto one = [&](const std::string &text) {
        const ResultValue t = ask(s, text);
        return rowCount(t) == 1 ? cell(t, 0, 0).uintValue() : ~0ull;
    };
    EXPECT_EQ(one("select count() from slices where kind == fetch "
                  "and hit == true"),
              3u);
    EXPECT_EQ(one("select count() from slices where kind == fetch "
                  "and correct == false"),
              1u);
    EXPECT_EQ(one("select count() from slices where "
                  "prefetched == true"),
              1u);
    EXPECT_EQ(one("select count() from slices where trap > 0"), 2u);
    EXPECT_EQ(one("select count() from slices where kind == prefetch"),
              1u);
}

TEST(Query, RegionColumnGroupsBlocksByEight)
{
    const ResultValue t = ask(
        fixtureStore(),
        "select region, count() from slices where correct == true "
        "group by region");
    ASSERT_EQ(rowCount(t), 2u);
    // Region 8 (blocks 64-66): two retires, two correct fetches and
    // the prefetch fill; region 16 (blocks 128/129): two retires and
    // two correct fetches, with the wrong-path fetch filtered out.
    EXPECT_EQ(cell(t, 0, 0).uintValue(), 8u);
    EXPECT_EQ(cell(t, 0, 1).uintValue(), 5u);
    EXPECT_EQ(cell(t, 1, 0).uintValue(), 16u);  // blocks 128/129
    EXPECT_EQ(cell(t, 1, 1).uintValue(), 4u);
}

TEST(Query, AggregatesOverCountersMatchHandValues)
{
    const EventStore s = fixtureStore();

    const ResultValue maxes = ask(
        s, "select counter, max(value) from counters "
           "group by counter");
    ASSERT_EQ(rowCount(maxes), 6u);
    EXPECT_EQ(cell(maxes, 0, 0).str(), "accesses");
    EXPECT_EQ(cell(maxes, 0, 1).uintValue(), 5u);
    EXPECT_EQ(cell(maxes, 1, 0).str(), "misses");
    EXPECT_EQ(cell(maxes, 1, 1).uintValue(), 2u);
    EXPECT_EQ(cell(maxes, 2, 0).str(), "wrong_path_fetches");
    EXPECT_EQ(cell(maxes, 2, 1).uintValue(), 1u);
    EXPECT_EQ(cell(maxes, 5, 0).str(), "prefetch_fills");
    EXPECT_EQ(cell(maxes, 5, 1).uintValue(), 1u);

    const ResultValue sums = ask(
        s, "select sum(value) from counters where "
           "counter == accesses");
    ASSERT_EQ(rowCount(sums), 1u);
    EXPECT_EQ(cell(sums, 0, 0).uintValue(), 7u);  // 2 + 5

    const ResultValue span =
        ask(s, "select min(instr), max(instr) from counters");
    ASSERT_EQ(rowCount(span), 1u);
    EXPECT_EQ(cell(span, 0, 0).uintValue(), 2u);
    EXPECT_EQ(cell(span, 0, 1).uintValue(), 4u);

    const ResultValue avg = ask(
        s, "select avg(value) from counters where counter == misses");
    ASSERT_EQ(rowCount(avg), 1u);
    EXPECT_DOUBLE_EQ(cell(avg, 0, 0).number(), 1.5);  // (1 + 2) / 2
}

TEST(Query, WindowColumnBucketsInstructions)
{
    const ResultValue t = ask(
        fixtureStore(),
        "select window, count() from slices where kind == fetch "
        "group by window window 2");
    // instr/2: 1->0, 2->1, 3->1, 4->2; fetch rows per window.
    ASSERT_EQ(rowCount(t), 3u);
    EXPECT_EQ(cell(t, 0, 0).uintValue(), 0u);
    EXPECT_EQ(cell(t, 0, 1).uintValue(), 1u);
    EXPECT_EQ(cell(t, 1, 0).uintValue(), 1u);
    EXPECT_EQ(cell(t, 1, 1).uintValue(), 3u);
    EXPECT_EQ(cell(t, 2, 0).uintValue(), 2u);
    EXPECT_EQ(cell(t, 2, 1).uintValue(), 1u);
}

TEST(Query, ProjectionPreservesRecordOrderAndTypes)
{
    const ResultValue t = ask(
        fixtureStore(),
        "select instr, block, hit from slices where kind == fetch "
        "and correct == true");
    ASSERT_EQ(rowCount(t), 4u);
    EXPECT_EQ(cell(t, 0, 0).uintValue(), 1u);
    EXPECT_EQ(cell(t, 0, 1).uintValue(), 64u);
    EXPECT_FALSE(cell(t, 0, 2).boolean());
    EXPECT_EQ(cell(t, 1, 1).uintValue(), 65u);
    EXPECT_TRUE(cell(t, 1, 2).boolean());
    EXPECT_EQ(cell(t, 3, 0).uintValue(), 4u);
    EXPECT_EQ(cell(t, 3, 1).uintValue(), 128u);

    // The table is a canonical {title, columns, rows} document, so
    // the CSV renderer applies unchanged.
    const std::string csv = toCsv(t);
    EXPECT_NE(csv.find("instr,block,hit"), std::string::npos) << csv;
    EXPECT_NE(csv.find("1,64,false"), std::string::npos) << csv;
}

// ---------------------------------------------------------- empty store

TEST(Query, EmptyStoreYieldsEmptyTables)
{
    const EventStore s;
    const ResultValue proj = ask(s, "select instr from slices");
    EXPECT_EQ(rowCount(proj), 0u);
    // Aggregation over zero rows yields zero groups (not one zero
    // row): there is no group key to report.
    const ResultValue agg = ask(s, "select count() from slices");
    EXPECT_EQ(rowCount(agg), 0u);
    const ResultValue streams = missStreamLengthTable(s);
    EXPECT_EQ(rowCount(streams), 0u);
}

TEST(EventStore, SkewInjectionPerturbsExactlyOneSample)
{
    EventStore a = fixtureStore();
    const EventStore b = fixtureStore();
    const auto at =
        a.injectCounterSkew(EventCounter::Accesses, 1, 7);
    ASSERT_TRUE(at.has_value());
    EXPECT_EQ(*at, 4u);  // sample B, the second accesses row

    std::size_t diffs = 0;
    for (std::size_t i = 0; i < a.counterCount(); ++i)
        diffs += a.counterValue()[i] != b.counterValue()[i];
    EXPECT_EQ(diffs, 1u);
    EXPECT_EQ(a.sliceCount(), b.sliceCount());

    // Ordinals past the end clamp to the last sample; a counter with
    // no samples reports failure.
    EXPECT_EQ(a.injectCounterSkew(EventCounter::Misses, 99, 1), 4u);
    EventStore empty;
    EXPECT_FALSE(empty.injectCounterSkew(EventCounter::Misses, 0, 1)
                     .has_value());
}

// ----------------------------------------------------- engine recording

TEST(Query, EngineRecordingIsDeterministicAndQueryable)
{
    const SystemConfig cfg{};
    const Program prog = buildWorkloadProgram(ServerWorkload::OltpDb2);
    EventStoreOptions opts;
    opts.counterWindow = 1'024;

    const auto record = [&]() {
        EventStore store(opts);
        TraceEngine engine(
            cfg, prog, executorConfigFor(ServerWorkload::OltpDb2),
            makePrefetcher(PrefetcherKind::Pif, cfg));
        ObserverConfig obs;
        obs.events = &store;
        engine.attachObservers(obs);
        engine.run(2'000, 10'000);
        return store;
    };
    const EventStore a = record();
    const EventStore b = record();
    EXPECT_EQ(toJson(toResult(a), 0), toJson(toResult(b), 0));
    EXPECT_GT(a.sliceCount(), 0u);
    EXPECT_EQ(a.retired(0), 12'000u);
    // 12000 retires at stride 1024 = 11 boundaries, 6 counters each.
    EXPECT_EQ(a.counterCount(), 11u * numEventCounters);

    // The recorded fetch count matches a whole-store query, and the
    // sampled access counter is cumulative (last sample <= total).
    const ResultValue fetches = ask(
        a, "select count() from slices where kind == fetch");
    ASSERT_EQ(rowCount(fetches), 1u);
    EXPECT_GT(cell(fetches, 0, 0).uintValue(), 0u);
    const ResultValue last = ask(
        a, "select max(value) from counters where "
           "counter == accesses");
    const ResultValue total = ask(
        a, "select count() from slices where kind == fetch and "
           "correct == true");
    EXPECT_LE(cell(last, 0, 0).uintValue(),
              cell(total, 0, 0).uintValue());
}

} // namespace
} // namespace pifetch
