/**
 * @file
 * Spatial compactor tests, including the paper's Figure 5 example.
 */

#include <gtest/gtest.h>

#include "pif/spatial_compactor.hh"

namespace pifetch {
namespace {

/** PC of instruction @p i inside block @p b. */
Addr
pcOf(Addr b, unsigned i = 0)
{
    return blockBase(b) + i * instrBytes;
}

TEST(SpatialRegion, BitIndexRoundTrips)
{
    for (int off = -2; off <= 5; ++off) {
        if (off == 0)
            continue;
        const unsigned i = SpatialRegion::bitIndex(off, 2);
        EXPECT_EQ(SpatialRegion::offsetOf(i, 2), off);
    }
}

TEST(SpatialRegion, CoversRequiresSubsetAndSameTrigger)
{
    SpatialRegion a;
    a.triggerPc = 0x1000;
    a.bits = 0b101;
    SpatialRegion b = a;
    b.bits = 0b001;
    EXPECT_TRUE(a.covers(b));
    EXPECT_FALSE(b.covers(a));
    b.triggerPc = 0x1004;
    EXPECT_FALSE(a.covers(b));
}

TEST(SpatialCompactor, CollapsesSameBlockPcs)
{
    SpatialCompactor c(2, 5);
    EXPECT_FALSE(c.observe(pcOf(10, 0), true, 0).has_value());
    EXPECT_FALSE(c.observe(pcOf(10, 1), true, 0).has_value());
    EXPECT_FALSE(c.observe(pcOf(10, 2), true, 0).has_value());
    EXPECT_EQ(c.blockAccesses(), 1u);
    EXPECT_EQ(c.observedPcs(), 3u);
}

TEST(SpatialCompactor, AccumulatesNeighboursIntoBitVector)
{
    SpatialCompactor c(2, 5);
    c.observe(pcOf(100), true, 0);       // trigger
    c.observe(pcOf(101), true, 0);       // +1
    c.observe(pcOf(99), true, 0);        // -1
    c.observe(pcOf(105), true, 0);       // +5
    const auto rec = c.observe(pcOf(200), true, 0);  // out of region
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->triggerBlock(), 100u);
    EXPECT_TRUE(rec->testOffset(1, 2));
    EXPECT_TRUE(rec->testOffset(-1, 2));
    EXPECT_TRUE(rec->testOffset(5, 2));
    EXPECT_FALSE(rec->testOffset(2, 2));
    EXPECT_EQ(rec->popCount(), 3u);
}

TEST(SpatialCompactor, PaperFigure5Sequence)
{
    // Figure 5: region = 1 block preceding + 2 succeeding the trigger.
    // Retired: PCA, PCA+2 (trigger+2), PCB (outside), PCA-1?, ...
    // We replay the figure's left column: PCA, PCA+2, PCB.
    SpatialCompactor c(1, 2);
    const Addr block_a = 1000;
    const Addr block_b = 2000;

    // Step 1-3: PCA opens the region, PCA+2 sets the second succeeding
    // bit -> vector (succ) "01" with trigger A.
    EXPECT_FALSE(c.observe(pcOf(block_a), true, 0).has_value());
    EXPECT_FALSE(c.observe(pcOf(block_a + 2), true, 0).has_value());

    // Step 4: PCB retires outside the region: PCA's record (bits 101
    // reading prec|succ as in the figure: prec=0? here -1 unset,
    // +2 set) is emitted.
    const auto rec_a = c.observe(pcOf(block_b), true, 0);
    ASSERT_TRUE(rec_a.has_value());
    EXPECT_EQ(rec_a->triggerBlock(), block_a);
    EXPECT_FALSE(rec_a->testOffset(-1, 1));
    EXPECT_FALSE(rec_a->testOffset(1, 1));
    EXPECT_TRUE(rec_a->testOffset(2, 1));

    // Step 5-6: PCA recurs: PCB's (empty) record is emitted.
    const auto rec_b = c.observe(pcOf(block_a), true, 0);
    ASSERT_TRUE(rec_b.has_value());
    EXPECT_EQ(rec_b->triggerBlock(), block_b);
    EXPECT_TRUE(rec_b->isTriggerOnly());

    // The preceding block A-1 now lands in the open region.
    EXPECT_FALSE(c.observe(pcOf(block_a - 1), true, 0).has_value());
    const auto rec_a2 = c.flush();
    ASSERT_TRUE(rec_a2.has_value());
    EXPECT_TRUE(rec_a2->testOffset(-1, 1));
}

TEST(SpatialCompactor, TriggerCarriesTagAndTrapLevel)
{
    SpatialCompactor c(2, 5);
    c.observe(pcOf(50), false, 1);
    c.observe(pcOf(51), true, 1);  // neighbour tag is irrelevant
    const auto rec = c.flush();
    ASSERT_TRUE(rec.has_value());
    EXPECT_FALSE(rec->triggerTagged);
    EXPECT_EQ(rec->trapLevel, 1);
}

TEST(SpatialCompactor, BackwardJumpOutsideRegionClosesIt)
{
    SpatialCompactor c(2, 5);
    c.observe(pcOf(100), true, 0);
    const auto rec = c.observe(pcOf(97), true, 0);  // -3: outside
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->triggerBlock(), 100u);
}

TEST(SpatialCompactor, RevisitingTriggerBlockSetsNoBits)
{
    SpatialCompactor c(2, 5);
    c.observe(pcOf(100), true, 0);
    c.observe(pcOf(101), true, 0);
    c.observe(pcOf(100, 3), true, 0);  // back to the trigger block
    const auto rec = c.flush();
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->popCount(), 1u);  // only +1
}

TEST(SpatialCompactor, FlushOnEmptyIsEmpty)
{
    SpatialCompactor c(2, 5);
    EXPECT_FALSE(c.flush().has_value());
}

TEST(SpatialCompactor, ResetClearsState)
{
    SpatialCompactor c(2, 5);
    c.observe(pcOf(1), true, 0);
    c.reset();
    EXPECT_EQ(c.observedPcs(), 0u);
    EXPECT_FALSE(c.flush().has_value());
}

TEST(SpatialCompactorDeath, RejectsOversizedRegion)
{
    EXPECT_EXIT(SpatialCompactor(16, 16),
                ::testing::ExitedWithCode(1), "too large");
}

/** Property sweep over geometries: every emitted bit is in range. */
class CompactorGeometry
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(CompactorGeometry, EmittedBitsRespectGeometry)
{
    const auto [before, after] = GetParam();
    SpatialCompactor c(before, after);
    std::uint64_t x = 123456789;
    std::vector<SpatialRegion> recs;
    for (int i = 0; i < 5000; ++i) {
        x = x * 6364136223846793005ull + 1;
        const Addr block = 1000 + (x >> 55);  // blocks in [1000, 1512)
        if (auto r = c.observe(pcOf(block), true, 0))
            recs.push_back(*r);
    }
    ASSERT_FALSE(recs.empty());
    const unsigned width = before + after;
    for (const SpatialRegion &r : recs) {
        if (width < 32) {
            EXPECT_EQ(r.bits >> width, 0u);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CompactorGeometry,
    ::testing::Combine(::testing::Values(0u, 1u, 2u, 4u),
                       ::testing::Values(0u, 1u, 2u, 5u, 12u)));

} // namespace
} // namespace pifetch
