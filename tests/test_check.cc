/**
 * @file
 * Validation-subsystem tests: scenario fuzzing/serialization, the
 * invariant evaluators, the shrinker and the check runner.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "check/checker.hh"
#include "common/digest.hh"
#include "query/event_store.hh"

namespace pifetch {
namespace {

// ------------------------------------------------------------ digests

TEST(StreamDigest, OrderAndContentSensitive)
{
    StreamDigest ab;
    ab.add(1);
    ab.add(2);
    StreamDigest ba;
    ba.add(2);
    ba.add(1);
    EXPECT_NE(ab.value(), ba.value());

    StreamDigest ab2;
    ab2.add(1);
    ab2.add(2);
    EXPECT_EQ(ab.value(), ab2.value());

    ab2.reset();
    EXPECT_EQ(ab2.value(), StreamDigest().value());
}

// ----------------------------------------------------------- scenarios

TEST(Scenario, FromSeedIsDeterministic)
{
    const std::string a = toJson(toResult(scenarioFromSeed(7)), 0);
    EXPECT_EQ(a, toJson(toResult(scenarioFromSeed(7)), 0));
    EXPECT_NE(a, toJson(toResult(scenarioFromSeed(8)), 0));
}

TEST(Scenario, FuzzedPointsAreAlwaysValid)
{
    for (std::uint64_t seed = 1; seed <= 500; ++seed) {
        const Scenario sc = scenarioFromSeed(seed);
        const auto err = validateScenario(sc);
        EXPECT_FALSE(err.has_value())
            << "seed " << seed << ": " << err.value_or("");
    }
}

TEST(Scenario, JsonRoundTripIsExact)
{
    for (const std::uint64_t seed : {1ull, 17ull, 42ull}) {
        const Scenario sc = scenarioFromSeed(seed);
        const std::string json = toJson(toResult(sc), 2);
        std::string err;
        const auto doc = parseJson(json, &err);
        ASSERT_TRUE(doc.has_value()) << err;
        const auto parsed = scenarioFromResult(*doc, &err);
        ASSERT_TRUE(parsed.has_value()) << err;
        EXPECT_EQ(toJson(toResult(*parsed), 2), json);
    }
}

TEST(Scenario, ParserUnwrapsFailureDocuments)
{
    const Scenario sc = scenarioFromSeed(3);
    ResultValue wrapped = ResultValue::object();
    wrapped.set("scenario", toResult(sc));
    auto parsed = scenarioFromResult(wrapped);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(toJson(toResult(*parsed), 0), toJson(toResult(sc), 0));

    // "shrunk" wins over "scenario" when both are present.
    Scenario small = sc;
    small.measure = 5'000;
    wrapped.set("shrunk", toResult(small));
    parsed = scenarioFromResult(wrapped);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->measure, 5'000u);
}

TEST(Scenario, ParserRejectsMalformedDocuments)
{
    std::string err;
    EXPECT_FALSE(scenarioFromResult(ResultValue("text"), &err)
                     .has_value());
    EXPECT_FALSE(err.empty());

    ResultValue bad_kind = toResult(scenarioFromSeed(1));
    bad_kind.set("kind", "warp-drive");
    EXPECT_FALSE(scenarioFromResult(bad_kind, &err).has_value());

    ResultValue bad_member = toResult(scenarioFromSeed(1));
    bad_member.set("measure", "not-a-number");
    EXPECT_FALSE(scenarioFromResult(bad_member, &err).has_value());

    // A value wider than its field must fail the parse, not wrap to
    // an unrelated scenario (appFunctions is 32-bit: 2^32 + 40 would
    // otherwise truncate to 40 and "replay" something else entirely).
    ResultValue out_of_range = toResult(scenarioFromSeed(1));
    out_of_range.find("params")->set(
        "appFunctions", std::uint64_t{1} << 32 | 40u);
    EXPECT_FALSE(scenarioFromResult(out_of_range, &err).has_value());
    EXPECT_FALSE(err.empty());
}

TEST(Scenario, SpecSeedsEmitValidSpecScenarios)
{
    // A fifth of the seed space fuzzes the declarative spec layer;
    // the other four fifths must stay plain-params scenarios (their
    // draws predate the spec layer and are replay-locked).
    unsigned spec_count = 0;
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        const Scenario sc = scenarioFromSeed(seed);
        if (seed % 5 == 3) {
            ASSERT_NE(sc.spec, nullptr) << "seed " << seed;
            const auto err = validateWorkloadSpec(*sc.spec);
            EXPECT_FALSE(err.has_value())
                << "seed " << seed << ": " << err.value_or("");
            EXPECT_GE(sc.spec->programs.size(), 1u);
            EXPECT_LE(sc.spec->programs.size(), 2u);
            EXPECT_GE(sc.spec->phases.size(), 1u);
            EXPECT_LE(sc.spec->phases.size(), 3u);
            for (const WorkloadSpecPhase &ph : sc.spec->phases) {
                EXPECT_GE(ph.instructions, 2'000u);
                EXPECT_LE(ph.instructions, 200'000u);
            }
            ++spec_count;
        } else {
            EXPECT_EQ(sc.spec, nullptr) << "seed " << seed;
        }
    }
    EXPECT_EQ(spec_count, 10u);
}

TEST(Scenario, SpecScenarioJsonRoundTripIsExact)
{
    for (const std::uint64_t seed : {3ull, 8ull, 23ull}) {
        const Scenario sc = scenarioFromSeed(seed);
        ASSERT_NE(sc.spec, nullptr);
        const std::string json = toJson(toResult(sc), 2);
        std::string err;
        const auto doc = parseJson(json, &err);
        ASSERT_TRUE(doc.has_value()) << err;
        const auto parsed = scenarioFromResult(*doc, &err);
        ASSERT_TRUE(parsed.has_value()) << err;
        ASSERT_NE(parsed->spec, nullptr);
        EXPECT_EQ(toJson(toResult(*parsed), 2), json);
    }
}

TEST(Scenario, ParserRejectsCorruptSpecMember)
{
    // Spec decoding is strict: a corrupted spec must refuse to
    // replay, not silently fall back to the params workload.
    std::string err;
    ResultValue bad = toResult(scenarioFromSeed(3));
    bad.find("workload_spec")->set("programs", "gone");
    EXPECT_FALSE(scenarioFromResult(bad, &err).has_value());
    EXPECT_FALSE(err.empty());

    bad = toResult(scenarioFromSeed(3));
    bad.find("workload_spec")->set("surprise", 1);
    EXPECT_FALSE(scenarioFromResult(bad, &err).has_value());
    EXPECT_NE(err.find("unknown key"), std::string::npos) << err;
}

TEST(Scenario, PrefetcherKeysRoundTrip)
{
    for (const PrefetcherKind k :
         {PrefetcherKind::None, PrefetcherKind::NextLine,
          PrefetcherKind::Tifs, PrefetcherKind::Discontinuity,
          PrefetcherKind::Pif, PrefetcherKind::Perfect}) {
        const auto parsed = prefetcherFromKey(prefetcherKey(k));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, k);
    }
    EXPECT_FALSE(prefetcherFromKey("pifx").has_value());
    EXPECT_FALSE(prefetcherFromKey("PIF").has_value());
    EXPECT_FALSE(prefetcherFromKey("").has_value());
}

TEST(Scenario, ValidateRejectsOutOfRangePoints)
{
    const Scenario good = scenarioFromSeed(1);
    EXPECT_FALSE(validateScenario(good).has_value());

    Scenario sc = good;
    sc.params.condDensity = 1.5;
    EXPECT_TRUE(validateScenario(sc).has_value());

    sc = good;
    sc.params.appFunctions = sc.params.transactions;
    EXPECT_TRUE(validateScenario(sc).has_value());

    sc = good;
    sc.cfg.l1i.sizeBytes = 1000;  // not a whole number of sets
    EXPECT_TRUE(validateScenario(sc).has_value());

    sc = good;
    sc.cfg.pif.blocksAfter = 0;
    EXPECT_TRUE(validateScenario(sc).has_value());

    // A crafted repro must fail validation, not SIGFPE in the TIFS
    // modulo or OOM in the generator.
    sc = good;
    sc.cfg.tifs.historyEntries = 0;
    EXPECT_TRUE(validateScenario(sc).has_value());

    sc = good;
    sc.params.appFunctions = 3'000'000'000u;
    EXPECT_TRUE(validateScenario(sc).has_value());

    sc = good;
    sc.cfg.pif.historyRegions = std::uint64_t{1} << 62;
    EXPECT_TRUE(validateScenario(sc).has_value());

    sc = good;
    sc.cfg.l1i.sizeBytes = std::uint64_t{1} << 60;
    sc.cfg.l1i.assoc = 1;
    EXPECT_TRUE(validateScenario(sc).has_value());

    // Budget overflow: a warmup near UINT64_MAX must not wrap the
    // warmup + measure sum under the 50M cap and hang the replay.
    sc = good;
    sc.warmup = ~std::uint64_t{0};
    sc.measure = 30'000;
    EXPECT_TRUE(validateScenario(sc).has_value());

    sc = good;
    sc.measure = 10;
    EXPECT_TRUE(validateScenario(sc).has_value());

    sc = good;
    sc.cores = 0;
    EXPECT_TRUE(validateScenario(sc).has_value());
}

// ------------------------------------------------ invariant evaluators

/** A self-consistent functional result for perturbation tests. */
TraceRunResult
cleanTrace()
{
    TraceRunResult r;
    r.instrs = 10'000;
    r.accesses = 2'000;
    r.misses = 300;
    r.wrongPathFetches = 150;
    r.mispredicts = 40;
    r.interrupts = 2;
    r.prefetchIssued = 500;
    r.prefetchFills = 400;
    r.usefulPrefetches = 350;
    r.pifCoverage = 0.8;
    r.pifCoverageTl0 = 0.85;
    r.pifCoverageTl1 = 0.4;
    r.retireDigest = 0x1234;
    r.accessDigest = 0x5678;
    return r;
}

/** The timed-engine mirror of cleanTrace(). */
CycleRunResult
cleanCycle()
{
    CycleRunResult r;
    r.cycles = 40'000;
    r.instrs = 10'000;
    r.userInstrs = 9'900;
    r.uipc = static_cast<double>(r.userInstrs) /
             static_cast<double>(r.cycles);
    r.demandMisses = 300;
    r.accesses = 2'000;
    r.misses = 300;
    r.wrongPathFetches = 150;
    r.mispredicts = 40;
    r.interrupts = 2;
    r.retireDigest = 0x1234;
    r.accessDigest = 0x5678;
    return r;
}

std::set<std::string>
invariantIds(const std::vector<CheckFailure> &failures)
{
    std::set<std::string> ids;
    for (const CheckFailure &f : failures)
        ids.insert(f.invariant);
    return ids;
}

TEST(Invariants, CleanResultsPassEveryEvaluator)
{
    std::vector<CheckFailure> out;
    checkTraceSanity(cleanTrace(), "clean", 1024, out);
    checkCycleSanity(cleanCycle(), false, out);
    checkCrossEngine(cleanTrace(), cleanCycle(), true, out);
    checkTraceIdentical(cleanTrace(), cleanTrace(), "id", out);
    checkAccessInvariance(cleanTrace(), cleanTrace(), out);
    checkCoverageMonotone(0.6, 0.7, 512, 2048, out);
    TraceRunResult twice = cleanTrace();
    twice.instrs *= 2;
    twice.accesses *= 2;
    twice.misses += 10;
    checkLengthScaling(cleanTrace(), twice, out);
    checkDegreeMonotone(500, 900, 2, 4, out);
    TraceRunResult off;
    off.instrs = 10'000;
    off.accesses = 2'000;
    off.misses = 900;
    checkPrefetchOff(off, out);
    for (const CheckFailure &f : out)
        ADD_FAILURE() << f.invariant << ": " << f.detail;
}

TEST(Invariants, TraceSanityCatchesMissOverrun)
{
    TraceRunResult r = cleanTrace();
    r.misses = r.accesses + 1;
    std::vector<CheckFailure> out;
    checkTraceSanity(r, "t", 1024, out);
    EXPECT_EQ(invariantIds(out),
              std::set<std::string>{"trace-stat-sanity"});
}

TEST(Invariants, TraceSanityHonoursWindowBoundarySlack)
{
    // Useful touches may exceed window fills by the lines resident at
    // the boundary (<= cache capacity), but not by more.
    TraceRunResult r = cleanTrace();
    r.usefulPrefetches = r.prefetchFills + 64;
    std::vector<CheckFailure> out;
    checkTraceSanity(r, "t", 64, out);
    EXPECT_TRUE(out.empty());
    r.usefulPrefetches = r.prefetchFills + 65;
    checkTraceSanity(r, "t", 64, out);
    EXPECT_EQ(invariantIds(out),
              std::set<std::string>{"trace-stat-sanity"});

    out.clear();
    r = cleanTrace();
    r.pifCoverage = 1.25;
    checkTraceSanity(r, "t", 1024, out);
    EXPECT_EQ(invariantIds(out),
              std::set<std::string>{"trace-stat-sanity"});
}

TEST(Invariants, CycleSanityCatchesInconsistentUipc)
{
    CycleRunResult r = cleanCycle();
    r.uipc *= 1.5;
    std::vector<CheckFailure> out;
    checkCycleSanity(r, false, out);
    EXPECT_EQ(invariantIds(out),
              std::set<std::string>{"cycle-stat-sanity"});

    out.clear();
    r = cleanCycle();
    r.demandMisses = r.misses + 5;
    checkCycleSanity(r, false, out);
    EXPECT_EQ(invariantIds(out),
              std::set<std::string>{"cycle-stat-sanity"});

    // The same result as a Perfect run must report zero demand misses.
    out.clear();
    checkCycleSanity(cleanCycle(), true, out);
    EXPECT_EQ(invariantIds(out),
              std::set<std::string>{"cycle-stat-sanity"});
}

TEST(Invariants, CrossEngineCatchesEveryCounterDivergence)
{
    std::vector<CheckFailure> out;

    CycleRunResult c = cleanCycle();
    c.retireDigest ^= 1;
    checkCrossEngine(cleanTrace(), c, true, out);
    EXPECT_EQ(invariantIds(out),
              std::set<std::string>{"cross-engine-retire-digest"});

    out.clear();
    c = cleanCycle();
    c.accessDigest ^= 1;
    c.mispredicts += 1;
    checkCrossEngine(cleanTrace(), c, true, out);
    EXPECT_EQ(invariantIds(out),
              (std::set<std::string>{"cross-engine-access-digest",
                                     "cross-engine-mispredicts"}));
}

TEST(Invariants, CrossEngineMissCheckRequiresInstantFills)
{
    CycleRunResult c = cleanCycle();
    c.misses += 7;
    c.demandMisses += 7;
    std::vector<CheckFailure> out;
    // With a prefetcher attached, fill timing may move misses.
    checkCrossEngine(cleanTrace(), c, false, out);
    EXPECT_TRUE(out.empty());
    // Without one, the miss streams must coincide.
    checkCrossEngine(cleanTrace(), c, true, out);
    EXPECT_EQ(invariantIds(out),
              std::set<std::string>{"cross-engine-misses"});
}

TEST(Invariants, IdenticalCatchesAnyDrift)
{
    TraceRunResult b = cleanTrace();
    b.usefulPrefetches += 1;
    b.pifCoverageTl1 += 1e-12;
    std::vector<CheckFailure> out;
    checkTraceIdentical(cleanTrace(), b, "thread-invariance", out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(invariantIds(out),
              std::set<std::string>{"thread-invariance"});
}

TEST(Invariants, PrefetchOffCatchesActivity)
{
    TraceRunResult r;
    r.prefetchIssued = 1;
    std::vector<CheckFailure> out;
    checkPrefetchOff(r, out);
    EXPECT_EQ(invariantIds(out), std::set<std::string>{"prefetch-off"});
}

TEST(Invariants, CoverageMonotoneToleratesOnlySmallDips)
{
    std::vector<CheckFailure> out;
    checkCoverageMonotone(0.70, 0.68, 512, 2048, out);
    EXPECT_TRUE(out.empty());  // within tolerance
    checkCoverageMonotone(0.70, 0.50, 512, 2048, out);
    EXPECT_EQ(invariantIds(out),
              std::set<std::string>{"coverage-monotone-history"});
}

TEST(Invariants, LengthScalingCatchesNonMonotoneCounters)
{
    TraceRunResult once = cleanTrace();
    TraceRunResult twice = cleanTrace();
    twice.instrs *= 2;
    twice.accesses = once.accesses - 1;  // counters must not shrink
    std::vector<CheckFailure> out;
    checkLengthScaling(once, twice, out);
    EXPECT_EQ(invariantIds(out),
              std::set<std::string>{"length-scaling"});

    out.clear();
    twice = cleanTrace();
    twice.instrs *= 2;
    twice.accesses = once.accesses * 4;  // far from ~2x
    twice.misses = once.misses;
    checkLengthScaling(once, twice, out);
    EXPECT_EQ(invariantIds(out),
              std::set<std::string>{"length-scaling"});
}

TEST(Invariants, DegreeMonotoneCatchesMiscount)
{
    std::vector<CheckFailure> out;
    checkDegreeMonotone(1'000, 980, 2, 4, out);
    EXPECT_TRUE(out.empty());  // inside the back-pressure slack
    checkDegreeMonotone(1'000, 500, 2, 4, out);
    EXPECT_EQ(invariantIds(out),
              std::set<std::string>{"nextline-degree-monotone"});
}

/**
 * A four-instruction event store for the windowed evaluators: hits on
 * block 64 except one miss on @p miss_block at every index in
 * @p miss_at, with counter samples every two retires.
 */
EventStore
miniStore(Addr miss_block, const std::vector<int> &miss_at = {2})
{
    EventStoreOptions opts;
    opts.counterWindow = 2;
    EventStore s(opts);
    std::uint64_t misses = 0;
    for (int i = 0; i < 4; ++i) {
        RetiredInstr ri;
        ri.pc = 0x1000 + 4u * static_cast<unsigned>(i);
        s.recordRetire(0, ri);
        const bool miss = std::count(miss_at.begin(), miss_at.end(), i);
        misses += miss;
        FetchAccess fa;
        fa.block = miss ? miss_block : 64;
        fa.hit = !miss;
        s.recordAccess(0, fa, ri.pc);
        if (s.counterSampleDue(0)) {
            CounterSnapshot snap;
            snap.accesses = static_cast<std::uint64_t>(i) + 1;
            snap.misses = misses;
            s.sampleCounters(0, snap);
        }
    }
    return s;
}

TEST(Invariants, WindowedCountersCatchSkewAndReportFirstOnly)
{
    std::vector<CheckFailure> out;
    checkWindowedCounters(miniStore(64), miniStore(64), true, out);
    checkWindowedCounters(miniStore(64), miniStore(64), false, out);
    EXPECT_TRUE(out.empty());

    EventStore skewed = miniStore(64);
    skewed.injectCounterSkew(EventCounter::Accesses, 0, 3);
    skewed.injectCounterSkew(EventCounter::Mispredicts, 1, 1);
    checkWindowedCounters(miniStore(64), skewed, true, out);
    // Two samples disagree, but only the FIRST divergence is reported
    // — that is what localizes a bug in simulated time.
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].invariant, "windowed-counter-equality");
    EXPECT_NE(out[0].detail.find("accesses diverges at instr 2"),
              std::string::npos)
        << out[0].detail;
    EXPECT_NE(out[0].detail.find("cycle=5"), std::string::npos)
        << out[0].detail;
}

TEST(Invariants, WindowedCountersHonourFillTimingExclusion)
{
    EventStore skewed = miniStore(64);
    skewed.injectCounterSkew(EventCounter::Misses, 0, 1);
    std::vector<CheckFailure> out;
    // Misses (and prefetch fills) are fill-timing dependent: they only
    // count with instant fills, mirroring the whole-run oracle.
    checkWindowedCounters(miniStore(64), skewed, false, out);
    EXPECT_TRUE(out.empty());
    checkWindowedCounters(miniStore(64), skewed, true, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_NE(out[0].detail.find("misses diverges"),
              std::string::npos)
        << out[0].detail;
}

TEST(Invariants, WindowedCountersCatchScheduleDrift)
{
    // A store sampled at a different stride diverges at row 0.
    EventStoreOptions coarse;
    coarse.counterWindow = 4;
    EventStore other(coarse);
    for (int i = 0; i < 4; ++i) {
        RetiredInstr ri;
        ri.pc = 0x1000 + 4u * static_cast<unsigned>(i);
        other.recordRetire(0, ri);
        if (other.counterSampleDue(0))
            other.sampleCounters(0, CounterSnapshot{});
    }
    std::vector<CheckFailure> out;
    checkWindowedCounters(miniStore(64), other, true, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_NE(out[0].detail.find("schedules diverge"),
              std::string::npos)
        << out[0].detail;

    // A matching prefix with missing trailing samples is a count
    // mismatch, not a silent pass.
    out.clear();
    EventStore shorter(EventStoreOptions{});
    checkWindowedCounters(miniStore(64), shorter, true, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_NE(out[0].detail.find("counter-sample counts differ"),
              std::string::npos)
        << out[0].detail;
}

TEST(Invariants, RegionMissProfileLocalizesTheFirstBadRegion)
{
    std::vector<CheckFailure> out;
    checkRegionMissProfile(miniStore(64), miniStore(64), out);
    EXPECT_TRUE(out.empty());

    // Blocks 64 and 128 are 8-block regions 8 and 16: a miss moved
    // across regions names the region seen by only one engine.
    checkRegionMissProfile(miniStore(64), miniStore(128), out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].invariant, "region-miss-profile");
    EXPECT_NE(
        out[0].detail.find("region 8 misses only in the trace engine"),
        std::string::npos)
        << out[0].detail;

    out.clear();
    checkRegionMissProfile(miniStore(64), miniStore(64, {2, 3}), out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_NE(out[0].detail.find(
                  "region 8 miss counts diverge: trace=1 cycle=2"),
              std::string::npos)
        << out[0].detail;
}

// ------------------------------------------------------------ shrinker

TEST(Shrinker, PlantedViolationShrinksToCanonicalMinimum)
{
    // Start from a fuzzed point with the budget already trimmed so
    // every probe is cheap; the planted degree mis-count fails every
    // scenario, so the shrinker must drive each dimension to its
    // floor.
    Scenario sc = scenarioFromSeed(1);
    sc.warmup = 2'000;
    sc.measure = 8'000;

    const auto still = [](const Scenario &cand) {
        for (const CheckFailure &f :
             runScenario(cand, FaultInjection::DegreeMiscount)) {
            if (f.invariant == "nextline-degree-monotone")
                return true;
        }
        return false;
    };

    unsigned steps = 0;
    const Scenario min1 = shrinkScenario(sc, still, &steps);
    EXPECT_GT(steps, 0u);
    EXPECT_EQ(min1.measure, 4'000u);
    EXPECT_EQ(min1.warmup, 0u);
    EXPECT_EQ(min1.threads, 1u);
    EXPECT_EQ(min1.cores, 1u);
    EXPECT_EQ(min1.kind, PrefetcherKind::None);
    EXPECT_EQ(min1.params.appFunctions, 40u);
    EXPECT_EQ(min1.params.libFunctions, 8u);
    EXPECT_EQ(min1.params.handlers, 4u);
    EXPECT_EQ(min1.params.transactions, 2u);
    EXPECT_EQ(min1.params.interruptRate, 0.0);
    EXPECT_EQ(min1.params.loopsPerFunction, 0.0);
    EXPECT_EQ(min1.params.callLayers, 2u);
    EXPECT_EQ(min1.cfg.pif.historyRegions, 512u);
    EXPECT_EQ(min1.cfg.pif.numSabs, 1u);
    EXPECT_EQ(min1.cfg.nextLine.degree, 1u);
    EXPECT_EQ(min1.cfg.l1i.sizeBytes, 16u * 1024);
    EXPECT_EQ(min1.cfg.l1i.assoc, 1u);
    // The minimal scenario still fails and still replays.
    EXPECT_TRUE(still(min1));
    EXPECT_FALSE(validateScenario(min1).has_value());

    // Deterministic: shrinking the same failure twice converges to
    // the identical scenario.
    const Scenario min2 = shrinkScenario(sc, still, nullptr);
    EXPECT_EQ(toJson(toResult(min1), 0), toJson(toResult(min2), 0));
}

TEST(Shrinker, WindowMiscountShrinksToCanonicalFloor)
{
    // The windowed-counter oracle must survive shrinking: the skew
    // lands on the second 1024-instruction sample, which exists in
    // every probe down to the 4000-instruction measure floor, so the
    // shrinker reaches the same canonical point as the other faults
    // and the floor scenario still names instruction window 2048.
    Scenario sc = scenarioFromSeed(1);
    sc.warmup = 2'000;
    sc.measure = 8'000;

    const auto still = [](const Scenario &cand) {
        for (const CheckFailure &f :
             runScenario(cand, FaultInjection::WindowMiscount)) {
            if (f.invariant == "windowed-counter-equality")
                return true;
        }
        return false;
    };

    unsigned steps = 0;
    const Scenario min1 = shrinkScenario(sc, still, &steps);
    EXPECT_GT(steps, 0u);
    EXPECT_EQ(min1.measure, 4'000u);
    EXPECT_EQ(min1.warmup, 0u);
    EXPECT_EQ(min1.threads, 1u);
    EXPECT_EQ(min1.cores, 1u);
    EXPECT_EQ(min1.kind, PrefetcherKind::None);
    EXPECT_TRUE(still(min1));
    EXPECT_FALSE(validateScenario(min1).has_value());

    bool named_window = false;
    for (const CheckFailure &f :
         runScenario(min1, FaultInjection::WindowMiscount)) {
        if (f.detail.find("instr 2048") != std::string::npos)
            named_window = true;
    }
    EXPECT_TRUE(named_window);

    const Scenario min2 = shrinkScenario(sc, still, nullptr);
    EXPECT_EQ(toJson(toResult(min1), 0), toJson(toResult(min2), 0));
}

TEST(Shrinker, SpecScenarioShrinksToCanonicalMinimalSpec)
{
    // The spec-mode twin of PlantedViolationShrinksToCanonicalMinimum:
    // a fault that fails everywhere must drive the shrink into spec
    // coordinates — schedule dropped, one program left, its params at
    // the same floors as the plain shrink.
    Scenario sc = scenarioFromSeed(3);
    ASSERT_NE(sc.spec, nullptr);
    sc.warmup = 2'000;
    sc.measure = 8'000;

    const auto still = [](const Scenario &cand) {
        for (const CheckFailure &f :
             runScenario(cand, FaultInjection::DegreeMiscount)) {
            if (f.invariant == "nextline-degree-monotone")
                return true;
        }
        return false;
    };

    unsigned steps = 0;
    const Scenario min1 = shrinkScenario(sc, still, &steps);
    EXPECT_GT(steps, 0u);
    ASSERT_NE(min1.spec, nullptr);  // never shrinks out of spec space
    EXPECT_TRUE(min1.spec->phases.empty());
    ASSERT_EQ(min1.spec->programs.size(), 1u);
    const WorkloadParams &p = min1.spec->programs[0].params;
    EXPECT_EQ(p.appFunctions, 40u);
    EXPECT_EQ(p.libFunctions, 8u);
    EXPECT_EQ(p.handlers, 4u);
    EXPECT_EQ(p.transactions, 2u);
    EXPECT_EQ(p.interruptRate, 0.0);
    EXPECT_EQ(p.loopsPerFunction, 0.0);
    EXPECT_EQ(p.callLayers, 2u);
    EXPECT_EQ(p.maxCallDepth, 6u);
    EXPECT_EQ(min1.measure, 4'000u);
    EXPECT_EQ(min1.warmup, 0u);
    EXPECT_EQ(min1.threads, 1u);
    EXPECT_EQ(min1.cores, 1u);
    EXPECT_EQ(min1.kind, PrefetcherKind::None);
    EXPECT_TRUE(still(min1));
    EXPECT_FALSE(validateScenario(min1).has_value());

    // Deterministic, and the canonical point replays through JSON.
    const Scenario min2 = shrinkScenario(sc, still, nullptr);
    EXPECT_EQ(toJson(toResult(min1), 0), toJson(toResult(min2), 0));
    std::string err;
    const auto replayed = scenarioFromResult(toResult(min1), &err);
    ASSERT_TRUE(replayed.has_value()) << err;
    EXPECT_EQ(toJson(toResult(*replayed), 0), toJson(toResult(min1), 0));
}

TEST(Shrinker, AcceptsOnlyMovesThatKeepTheFailure)
{
    // A predicate keyed on a property of the scenario itself (not the
    // simulator): fails iff measure > 6000. The shrinker may reduce
    // measure only down to the smallest still-failing value.
    Scenario sc = scenarioFromSeed(2);
    sc.warmup = 1'000;
    sc.measure = 48'000;
    const auto still = [](const Scenario &cand) {
        return cand.measure > 6'000;
    };
    const Scenario min = shrinkScenario(sc, still, nullptr);
    EXPECT_GT(min.measure, 6'000u);
    EXPECT_LE(min.measure, 12'000u);  // one halving above the limit
}

// --------------------------------------------------------- check runner

TEST(Checker, FaultKeysRoundTrip)
{
    const std::vector<FaultInjection> all = allFaultInjections();
    EXPECT_EQ(all.size(), 4u);
    for (const FaultInjection f : all) {
        const auto parsed = faultFromKey(faultKey(f));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, f);
    }
    EXPECT_EQ(faultKey(FaultInjection::WindowMiscount),
              "window-miscount");
    EXPECT_FALSE(faultFromKey("degree").has_value());
}

TEST(Checker, CleanSeedsPass)
{
    CheckOptions opts;
    opts.seeds = 3;
    opts.threads = 2;
    const CheckReport report = runCheck(opts);
    EXPECT_EQ(report.seedsRun, 3u);
    for (const ScenarioReport &r : report.failures) {
        for (const CheckFailure &f : r.failures)
            ADD_FAILURE() << "seed " << r.scenario.seed << ": "
                          << f.invariant << ": " << f.detail;
    }
    EXPECT_TRUE(report.passed());

    const ResultValue doc = toResult(report);
    ASSERT_NE(doc.find("passed"), nullptr);
    EXPECT_TRUE(doc.find("passed")->boolean());
    EXPECT_EQ(doc.find("seeds")->uintValue(), 3u);
    EXPECT_EQ(doc.find("failed")->uintValue(), 0u);
}

TEST(Checker, InjectedFaultsAreCaughtOnEverySeed)
{
    CheckOptions opts;
    opts.seeds = 2;
    opts.threads = 2;
    opts.shrink = false;  // keep the suite fast; shrink has its own test
    opts.inject = FaultInjection::DegreeMiscount;
    const CheckReport report = runCheck(opts);
    ASSERT_EQ(report.failures.size(), 2u);
    for (const ScenarioReport &r : report.failures) {
        EXPECT_EQ(invariantIds(r.failures),
                  std::set<std::string>{"nextline-degree-monotone"});
        EXPECT_FALSE(r.shrunkValid);
    }

    const ResultValue doc = toResult(report);
    EXPECT_FALSE(doc.find("passed")->boolean());
    EXPECT_EQ(doc.find("failures")->size(), 2u);
    // Each failure entry embeds a replayable scenario.
    const ResultValue &entry = doc.find("failures")->at(0);
    std::string err;
    EXPECT_TRUE(scenarioFromResult(entry, &err).has_value()) << err;
}

TEST(Checker, CoverageDropInjectionTripsTheFig9Oracle)
{
    CheckOptions opts;
    opts.seeds = 1;
    opts.threads = 1;
    opts.shrink = false;
    opts.inject = FaultInjection::CoverageDrop;
    const CheckReport report = runCheck(opts);
    ASSERT_EQ(report.failures.size(), 1u);
    EXPECT_EQ(invariantIds(report.failures[0].failures),
              std::set<std::string>{"coverage-monotone-history"});
}

} // namespace
} // namespace pifetch
