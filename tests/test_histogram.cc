/**
 * @file
 * Histogram unit tests.
 */

#include <gtest/gtest.h>

#include "common/histogram.hh"

namespace pifetch {
namespace {

TEST(Log2Histogram, EmptyHasZeroFractions)
{
    Log2Histogram h(10);
    EXPECT_DOUBLE_EQ(h.totalWeight(), 0.0);
    EXPECT_DOUBLE_EQ(h.fractionAt(0), 0.0);
    EXPECT_DOUBLE_EQ(h.cumulativeAt(10), 0.0);
    EXPECT_EQ(h.highestBucket(), 0u);
}

TEST(Log2Histogram, ZeroAndOneShareBucketZero)
{
    Log2Histogram h(10);
    h.add(0);
    h.add(1);
    EXPECT_DOUBLE_EQ(h.weightAt(0), 2.0);
    EXPECT_DOUBLE_EQ(h.fractionAt(0), 1.0);
}

TEST(Log2Histogram, PowerOfTwoBoundaries)
{
    Log2Histogram h(10);
    h.add(2);   // bucket 1
    h.add(3);   // bucket 1
    h.add(4);   // bucket 2
    h.add(7);   // bucket 2
    h.add(8);   // bucket 3
    EXPECT_DOUBLE_EQ(h.weightAt(1), 2.0);
    EXPECT_DOUBLE_EQ(h.weightAt(2), 2.0);
    EXPECT_DOUBLE_EQ(h.weightAt(3), 1.0);
    EXPECT_EQ(h.highestBucket(), 3u);
}

TEST(Log2Histogram, WeightsAccumulate)
{
    Log2Histogram h(10);
    h.add(16, 2.5);
    h.add(17, 1.5);
    EXPECT_DOUBLE_EQ(h.weightAt(4), 4.0);
    EXPECT_DOUBLE_EQ(h.totalWeight(), 4.0);
}

TEST(Log2Histogram, ValuesAboveRangeClampToLastBucket)
{
    Log2Histogram h(3);
    h.add(1ull << 20);
    EXPECT_DOUBLE_EQ(h.weightAt(3), 1.0);
}

TEST(Log2Histogram, CumulativeIsMonotone)
{
    Log2Histogram h(8);
    for (std::uint64_t v = 1; v < 200; ++v)
        h.add(v);
    double prev = 0.0;
    for (unsigned b = 0; b <= 8; ++b) {
        const double c = h.cumulativeAt(b);
        EXPECT_GE(c, prev);
        prev = c;
    }
    EXPECT_NEAR(h.cumulativeAt(8), 1.0, 1e-12);
}

TEST(Log2Histogram, ClearResets)
{
    Log2Histogram h(4);
    h.add(5);
    h.clear();
    EXPECT_DOUBLE_EQ(h.totalWeight(), 0.0);
}

TEST(RangeHistogram, PaperFig3Buckets)
{
    // The Figure 3 bucketing: 1, 2, 3-4, 5-8, 9-16, 17-32.
    RangeHistogram h({1, 2, 4, 8, 16, 32});
    EXPECT_EQ(h.labelAt(0), "1");
    EXPECT_EQ(h.labelAt(1), "2");
    EXPECT_EQ(h.labelAt(2), "3-4");
    EXPECT_EQ(h.labelAt(3), "5-8");
    EXPECT_EQ(h.labelAt(4), "9-16");
    EXPECT_EQ(h.labelAt(5), "17-32");
}

TEST(RangeHistogram, ValuesLandInCorrectRanges)
{
    RangeHistogram h({1, 2, 4, 8});
    h.add(1);
    h.add(2);
    h.add(3);
    h.add(4);
    h.add(5);
    h.add(8);
    EXPECT_DOUBLE_EQ(h.weightAt(0), 1.0);
    EXPECT_DOUBLE_EQ(h.weightAt(1), 1.0);
    EXPECT_DOUBLE_EQ(h.weightAt(2), 2.0);
    EXPECT_DOUBLE_EQ(h.weightAt(3), 2.0);
}

TEST(RangeHistogram, OverflowClampsToLastRange)
{
    RangeHistogram h({1, 2});
    h.add(100);
    EXPECT_DOUBLE_EQ(h.weightAt(1), 1.0);
}

TEST(RangeHistogram, FractionsSumToOne)
{
    RangeHistogram h({1, 2, 4, 8, 16, 32});
    for (std::uint64_t v = 1; v <= 40; ++v)
        h.add(v);
    double sum = 0.0;
    for (unsigned r = 0; r < h.ranges(); ++r)
        sum += h.fractionAt(r);
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(RangeHistogramDeath, RejectsNonIncreasingBounds)
{
    EXPECT_DEATH(RangeHistogram({2, 2}), "strictly increasing");
}

TEST(LinearHistogram, SignedDomain)
{
    LinearHistogram h(-4, 12);
    h.add(-4);
    h.add(0);
    h.add(12);
    EXPECT_DOUBLE_EQ(h.weightAt(-4), 1.0);
    EXPECT_DOUBLE_EQ(h.weightAt(0), 1.0);
    EXPECT_DOUBLE_EQ(h.weightAt(12), 1.0);
    EXPECT_DOUBLE_EQ(h.totalWeight(), 3.0);
}

TEST(LinearHistogram, OutOfRangeCountsAsDropped)
{
    LinearHistogram h(-2, 2);
    h.add(-3);
    h.add(3, 2.0);
    EXPECT_DOUBLE_EQ(h.dropped(), 3.0);
    EXPECT_DOUBLE_EQ(h.totalWeight(), 0.0);
}

TEST(LinearHistogram, FractionsNormalizeToInRangeWeight)
{
    LinearHistogram h(0, 1);
    h.add(0, 1.0);
    h.add(1, 3.0);
    EXPECT_DOUBLE_EQ(h.fractionAt(0), 0.25);
    EXPECT_DOUBLE_EQ(h.fractionAt(1), 0.75);
}

/** Property sweep: weights are conserved for any mix of values. */
class Log2HistogramProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(Log2HistogramProperty, TotalEqualsSumOfBuckets)
{
    const unsigned seed = GetParam();
    Log2Histogram h(20);
    std::uint64_t x = seed * 2654435761ull + 1;
    double expected = 0.0;
    for (int i = 0; i < 1000; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        h.add(x >> 40, 1.0);
        expected += 1.0;
    }
    double sum = 0.0;
    for (unsigned b = 0; b < h.buckets(); ++b)
        sum += h.weightAt(b);
    EXPECT_NEAR(sum, expected, 1e-9);
    EXPECT_NEAR(h.totalWeight(), expected, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Log2HistogramProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

} // namespace
} // namespace pifetch
