/**
 * @file
 * Baseline prefetcher tests: next-line, TIFS, discontinuity.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "prefetch/discontinuity.hh"
#include "prefetch/next_line.hh"
#include "prefetch/prefetcher.hh"
#include "prefetch/tifs.hh"

namespace pifetch {
namespace {

FetchInfo
fetchOf(Addr block, bool hit = false)
{
    FetchInfo f;
    f.block = block;
    f.pc = blockBase(block);
    f.hit = hit;
    f.correctPath = true;
    return f;
}

TEST(NullPrefetcher, ProducesNothing)
{
    NullPrefetcher p;
    std::vector<Addr> out;
    p.onFetchAccess(fetchOf(1));
    EXPECT_EQ(p.drainRequests(out, 8), 0u);
    EXPECT_EQ(p.name(), "None");
}

TEST(NextLine, EmitsNextDegreeBlocks)
{
    NextLineConfig cfg;
    cfg.degree = 3;
    NextLinePrefetcher p(cfg);
    p.onFetchAccess(fetchOf(100));
    std::vector<Addr> out;
    p.drainRequests(out, 16);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0], 101u);
    EXPECT_EQ(out[1], 102u);
    EXPECT_EQ(out[2], 103u);
}

TEST(NextLine, SameBlockDoesNotRetrigger)
{
    NextLinePrefetcher p(NextLineConfig{});
    p.onFetchAccess(fetchOf(100));
    p.onFetchAccess(fetchOf(100));
    std::vector<Addr> out;
    p.drainRequests(out, 64);
    EXPECT_EQ(out.size(), NextLineConfig{}.degree);
}

TEST(NextLine, QueueDedups)
{
    NextLineConfig cfg;
    cfg.degree = 4;
    NextLinePrefetcher p(cfg);
    p.onFetchAccess(fetchOf(100));
    p.onFetchAccess(fetchOf(101));  // overlapping window
    std::vector<Addr> out;
    p.drainRequests(out, 64);
    std::sort(out.begin(), out.end());
    EXPECT_TRUE(std::adjacent_find(out.begin(), out.end()) == out.end());
}

TEST(NextLine, ResetClears)
{
    NextLinePrefetcher p(NextLineConfig{});
    p.onFetchAccess(fetchOf(100));
    p.reset();
    std::vector<Addr> out;
    EXPECT_EQ(p.drainRequests(out, 16), 0u);
    EXPECT_EQ(p.issued(), 0u);
}

TEST(Tifs, ReplaysRecordedMissStream)
{
    TifsConfig cfg;
    cfg.historyEntries = 256;
    cfg.indexEntries = 64;
    TifsPrefetcher p(cfg);

    // First pass: a distinctive miss stream.
    const std::vector<Addr> misses = {10, 50, 90, 130, 170};
    for (Addr b : misses)
        p.onFetchAccess(fetchOf(b, false));
    std::vector<Addr> out;
    p.drainRequests(out, 64);  // nothing to replay yet
    EXPECT_TRUE(out.empty());

    // Recurrence of the head triggers replay of the rest.
    p.onFetchAccess(fetchOf(10, false));
    out.clear();
    p.drainRequests(out, 64);
    for (std::size_t i = 1; i < misses.size(); ++i) {
        EXPECT_NE(std::find(out.begin(), out.end(), misses[i]),
                  out.end())
            << "block " << misses[i] << " not replayed";
    }
}

TEST(Tifs, HitsDoNotRecord)
{
    TifsConfig cfg;
    TifsPrefetcher p(cfg);
    p.onFetchAccess(fetchOf(10, true));
    p.onFetchAccess(fetchOf(20, true));
    EXPECT_EQ(p.recorded(), 0u);
}

TEST(Tifs, StreamAdvancesOnFetches)
{
    TifsConfig cfg;
    cfg.sabWindowBlocks = 4;
    TifsPrefetcher p(cfg);
    std::vector<Addr> misses;
    for (Addr b = 0; b < 20; ++b)
        misses.push_back(b * 10);
    for (Addr b : misses)
        p.onFetchAccess(fetchOf(b, false));

    p.onFetchAccess(fetchOf(0, false));  // trigger
    std::vector<Addr> out;
    p.drainRequests(out, 256);
    const std::size_t first = out.size();
    EXPECT_GE(first, 4u);

    // Walking the stream (as hits now) loads further blocks.
    p.onFetchAccess(fetchOf(10, true));
    p.onFetchAccess(fetchOf(20, true));
    out.clear();
    p.drainRequests(out, 256);
    EXPECT_FALSE(out.empty());
}

TEST(Tifs, BoundedHistoryForgets)
{
    TifsConfig cfg;
    cfg.historyEntries = 8;
    cfg.indexEntries = 64;
    TifsPrefetcher p(cfg);
    p.onFetchAccess(fetchOf(999, false));
    for (Addr b = 0; b < 20; ++b)
        p.onFetchAccess(fetchOf(b, false));
    // 999's history slot is long overwritten: no replay on recurrence.
    p.onFetchAccess(fetchOf(999, false));
    std::vector<Addr> out;
    p.drainRequests(out, 64);
    EXPECT_TRUE(out.empty());
}

TEST(Tifs, UnboundedRemembersEverything)
{
    TifsConfig cfg;
    cfg.unbounded = true;
    TifsPrefetcher p(cfg);
    p.onFetchAccess(fetchOf(999, false));
    for (Addr b = 0; b < 5000; ++b)
        p.onFetchAccess(fetchOf(b, false));
    p.onFetchAccess(fetchOf(999, false));
    std::vector<Addr> out;
    p.drainRequests(out, 8);
    EXPECT_FALSE(out.empty());
}

TEST(Discontinuity, LearnsNonSequentialTransition)
{
    DiscontinuityConfig cfg;
    cfg.nextLineDegree = 1;
    DiscontinuityPrefetcher p(cfg);

    // Teach 100 -> 500.
    p.onFetchAccess(fetchOf(100));
    p.onFetchAccess(fetchOf(500));
    std::vector<Addr> out;
    p.drainRequests(out, 64);

    // Revisit 100: the discontinuity target must be prefetched.
    p.onFetchAccess(fetchOf(100));
    out.clear();
    p.drainRequests(out, 64);
    EXPECT_NE(std::find(out.begin(), out.end(), 500u), out.end());
    EXPECT_NE(std::find(out.begin(), out.end(), 501u), out.end());
}

TEST(Discontinuity, SequentialTransitionsNotTabled)
{
    DiscontinuityConfig cfg;
    cfg.nextLineDegree = 1;
    DiscontinuityPrefetcher p(cfg);
    p.onFetchAccess(fetchOf(100));
    p.onFetchAccess(fetchOf(101));
    p.onFetchAccess(fetchOf(100));
    std::vector<Addr> out;
    p.drainRequests(out, 64);
    // Only next-line output; no tabled target beyond block 102.
    for (Addr b : out)
        EXPECT_LE(b, 102u);
}

TEST(Discontinuity, NewTargetOverwritesOld)
{
    DiscontinuityConfig cfg;
    cfg.nextLineDegree = 0;
    DiscontinuityPrefetcher p(cfg);
    p.onFetchAccess(fetchOf(100));
    p.onFetchAccess(fetchOf(500));
    p.onFetchAccess(fetchOf(100));
    std::vector<Addr> drop;
    p.drainRequests(drop, 64);
    p.onFetchAccess(fetchOf(700));  // 100 -> 700 now
    p.onFetchAccess(fetchOf(100));
    std::vector<Addr> out;
    p.drainRequests(out, 64);
    EXPECT_NE(std::find(out.begin(), out.end(), 700u), out.end());
    EXPECT_EQ(std::find(out.begin(), out.end(), 500u), out.end());
}

} // namespace
} // namespace pifetch
