/**
 * @file
 * Branch predictor component tests.
 */

#include <gtest/gtest.h>

#include "branch/bimodal.hh"
#include "branch/btb.hh"
#include "branch/gshare.hh"
#include "branch/hybrid.hh"
#include "branch/ras.hh"

namespace pifetch {
namespace {

TEST(SatCounter2, SaturatesBothEnds)
{
    SatCounter2 c(0);
    c.update(false);
    EXPECT_EQ(c.raw(), 0u);
    for (int i = 0; i < 5; ++i)
        c.update(true);
    EXPECT_EQ(c.raw(), 3u);
    EXPECT_TRUE(c.taken());
}

TEST(SatCounter2, HysteresisNeedsTwoFlips)
{
    SatCounter2 c(3);
    c.update(false);
    EXPECT_TRUE(c.taken());   // weakly taken after one not-taken
    c.update(false);
    EXPECT_FALSE(c.taken());
}

TEST(Bimodal, LearnsBiasedBranch)
{
    BimodalPredictor p(1024);
    const Addr pc = 0x4000;
    for (int i = 0; i < 4; ++i)
        p.update(pc, false);
    EXPECT_FALSE(p.predict(pc));
    for (int i = 0; i < 4; ++i)
        p.update(pc, true);
    EXPECT_TRUE(p.predict(pc));
}

TEST(Bimodal, ResetRestoresWeaklyTaken)
{
    BimodalPredictor p(64);
    p.update(0, false);
    p.update(0, false);
    p.reset();
    EXPECT_TRUE(p.predict(0));  // power-on state is weakly taken
}

TEST(Gshare, HistoryShiftsWithOutcomes)
{
    GsharePredictor p(1024, 8);
    p.update(0x40, true);
    p.update(0x40, false);
    p.update(0x40, true);
    EXPECT_EQ(p.history(), 0b101u);
}

TEST(Gshare, LearnsAlternatingPatternBimodalCannot)
{
    GsharePredictor g(4096, 10);
    BimodalPredictor b(4096);
    const Addr pc = 0x1000;
    int g_correct = 0;
    int b_correct = 0;
    bool outcome = false;
    for (int i = 0; i < 2000; ++i) {
        outcome = !outcome;  // strict alternation
        g_correct += g.predict(pc) == outcome ? 1 : 0;
        b_correct += b.predict(pc) == outcome ? 1 : 0;
        g.update(pc, outcome);
        b.update(pc, outcome);
    }
    EXPECT_GT(g_correct, 1800);
    EXPECT_LT(b_correct, 1200);
}

TEST(Hybrid, ChooserPicksBetterComponent)
{
    BranchConfig cfg;
    cfg.gshareEntries = 4096;
    cfg.bimodalEntries = 4096;
    cfg.chooserEntries = 4096;
    cfg.historyBits = 10;
    HybridPredictor h(cfg);

    const Addr pc = 0x2000;
    bool outcome = false;
    int correct = 0;
    for (int i = 0; i < 2000; ++i) {
        outcome = !outcome;
        correct += h.predictAndUpdate(pc, outcome) == outcome ? 1 : 0;
    }
    // The hybrid should converge on gshare for the alternating branch.
    EXPECT_GT(correct, 1700);
    EXPECT_EQ(h.predictions(), 2000u);
    EXPECT_EQ(h.mispredicts(), 2000u - static_cast<unsigned>(correct));
}

TEST(Hybrid, ResetClearsCounters)
{
    HybridPredictor h(BranchConfig{});
    h.predictAndUpdate(0x10, true);
    h.reset();
    EXPECT_EQ(h.predictions(), 0u);
    EXPECT_EQ(h.mispredicts(), 0u);
}

TEST(Btb, MissThenHitAfterUpdate)
{
    Btb btb(64, 4);
    EXPECT_EQ(btb.lookup(0x40), invalidAddr);
    btb.update(0x40, 0x999);
    EXPECT_EQ(btb.lookup(0x40), 0x999u);
    EXPECT_EQ(btb.hits(), 1u);
    EXPECT_EQ(btb.lookups(), 2u);
}

TEST(Btb, UpdateOverwritesTarget)
{
    Btb btb(64, 4);
    btb.update(0x40, 0x100);
    btb.update(0x40, 0x200);
    EXPECT_EQ(btb.lookup(0x40), 0x200u);
}

TEST(Btb, LruEvictionWithinSet)
{
    // 4 entries, 2-way -> 2 sets. PCs 0x0, 0x8, 0x10 all map to set 0
    // (pc >> 2 & 1): 0x0 -> 0, 0x8 -> set 0, 0x10 -> set 0.
    Btb btb(4, 2);
    btb.update(0x0, 0xa);
    btb.update(0x8, 0xb);
    btb.lookup(0x0);          // refresh
    btb.update(0x10, 0xc);    // evicts 0x8
    EXPECT_EQ(btb.lookup(0x8), invalidAddr);
    EXPECT_EQ(btb.lookup(0x0), 0xau);
    EXPECT_EQ(btb.lookup(0x10), 0xcu);
}

TEST(Ras, PushPopLifo)
{
    ReturnAddressStack ras(8);
    ras.push(0x100);
    ras.push(0x200);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
}

TEST(Ras, UnderflowReturnsInvalid)
{
    ReturnAddressStack ras(4);
    EXPECT_EQ(ras.pop(), invalidAddr);
    EXPECT_EQ(ras.top(), invalidAddr);
}

TEST(Ras, OverflowWrapsOverwritingOldest)
{
    ReturnAddressStack ras(2);
    ras.push(1);
    ras.push(2);
    ras.push(3);  // overwrites 1
    EXPECT_EQ(ras.pop(), 3u);
    EXPECT_EQ(ras.pop(), 2u);
    EXPECT_EQ(ras.pop(), invalidAddr);
}

TEST(Ras, DepthSaturatesAtCapacity)
{
    ReturnAddressStack ras(2);
    ras.push(1);
    ras.push(2);
    ras.push(3);
    EXPECT_EQ(ras.depth(), 2u);
}

TEST(Ras, ResetEmpties)
{
    ReturnAddressStack ras(4);
    ras.push(5);
    ras.reset();
    EXPECT_EQ(ras.depth(), 0u);
    EXPECT_EQ(ras.pop(), invalidAddr);
}

/** Property: prediction accuracy on random-but-biased branch sets. */
class HybridAccuracy : public ::testing::TestWithParam<double>
{
};

TEST_P(HybridAccuracy, BeatsBiasOnStaticBranches)
{
    const double bias = GetParam();
    HybridPredictor h(BranchConfig{});
    std::uint64_t x = 88172645463325252ull;
    auto rnd = [&]() {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        return static_cast<double>(x >> 11) * 0x1.0p-53;
    };
    int correct = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const Addr pc = 0x1000 + (i % 64) * 4;
        const bool outcome = rnd() < bias;
        correct += h.predictAndUpdate(pc, outcome) == outcome ? 1 : 0;
    }
    // A learned static prediction must do at least as well as always
    // guessing the majority direction (minus training noise).
    const double majority = bias > 0.5 ? bias : 1.0 - bias;
    EXPECT_GT(static_cast<double>(correct) / n, majority - 0.10);
}

INSTANTIATE_TEST_SUITE_P(Biases, HybridAccuracy,
                         ::testing::Values(0.95, 0.85, 0.7, 0.3, 0.05));

} // namespace
} // namespace pifetch
