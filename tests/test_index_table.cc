/**
 * @file
 * Index table tests.
 */

#include <gtest/gtest.h>

#include "pif/index_table.hh"

namespace pifetch {
namespace {

TEST(IndexTable, InsertThenLookup)
{
    IndexTable t(64, 4);
    t.insert(0x1000, 42);
    const auto seq = t.lookup(0x1000);
    ASSERT_TRUE(seq.has_value());
    EXPECT_EQ(*seq, 42u);
}

TEST(IndexTable, MissingKeyReturnsNullopt)
{
    IndexTable t(64, 4);
    EXPECT_FALSE(t.lookup(0x2000).has_value());
    EXPECT_EQ(t.lookups(), 1u);
    EXPECT_EQ(t.hits(), 0u);
}

TEST(IndexTable, InsertUpdatesExistingKey)
{
    IndexTable t(64, 4);
    t.insert(0x1000, 1);
    t.insert(0x1000, 9);
    EXPECT_EQ(*t.lookup(0x1000), 9u);
}

TEST(IndexTable, LruEvictionWithinSet)
{
    // 4 entries, 2-way -> 2 sets; PCs 0x0, 0x8, 0xc hash to set 0
    // under the multiplicative set hash.
    IndexTable t(4, 2);
    t.insert(0x0, 1);
    t.insert(0x8, 2);
    t.lookup(0x0);       // refresh 0x0
    t.insert(0xc, 3);    // evicts 0x8
    EXPECT_TRUE(t.lookup(0x0).has_value());
    EXPECT_FALSE(t.lookup(0x8).has_value());
    EXPECT_TRUE(t.lookup(0xc).has_value());
}

TEST(IndexTable, UnboundedNeverEvicts)
{
    IndexTable t(0, 0);
    for (Addr pc = 0; pc < 10000; ++pc)
        t.insert(pc, pc * 2);
    for (Addr pc = 0; pc < 10000; ++pc)
        EXPECT_EQ(*t.lookup(pc), pc * 2);
}

TEST(IndexTable, ResetDropsAllMappings)
{
    IndexTable t(64, 4);
    t.insert(0x1000, 1);
    t.reset();
    EXPECT_FALSE(t.lookup(0x1000).has_value());
    EXPECT_EQ(t.lookups(), 1u);
}

TEST(IndexTableDeath, RejectsBadGeometry)
{
    EXPECT_EXIT(IndexTable(10, 4), ::testing::ExitedWithCode(1),
                "multiple");
}

} // namespace
} // namespace pifetch
