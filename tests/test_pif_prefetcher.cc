/**
 * @file
 * End-to-end PIF prefetcher tests.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "pif/pif_prefetcher.hh"

namespace pifetch {
namespace {

PifConfig
smallPif()
{
    PifConfig cfg;
    cfg.historyRegions = 1024;
    cfg.indexEntries = 256;
    cfg.indexAssoc = 4;
    return cfg;
}

/** Retire every instruction of the blocks in @p blocks, in order. */
void
retireBlocks(PifPrefetcher &pif, const std::vector<Addr> &blocks,
             TrapLevel tl = 0, bool tagged = true)
{
    for (Addr b : blocks) {
        RetiredInstr r;
        r.pc = blockBase(b);
        r.trapLevel = tl;
        pif.onRetire(r, tagged);
    }
}

FetchInfo
fetchOf(Addr block, bool hit = false, bool was_prefetched = false,
        TrapLevel tl = 0)
{
    FetchInfo f;
    f.block = block;
    f.pc = blockBase(block);
    f.hit = hit;
    f.wasPrefetched = was_prefetched;
    f.correctPath = true;
    f.trapLevel = tl;
    return f;
}

/**
 * A distinctive block sequence with spatial structure (functions at
 * 1000, 2000, 3000) and a distant jump separating occurrences.
 */
std::vector<Addr>
sampleSequence()
{
    return {1000, 1001, 1002, 2000, 2001, 3000, 3001, 3002, 3003};
}

TEST(PifPrefetcher, RecordsRegionsFromRetireStream)
{
    PifPrefetcher pif(smallPif());
    retireBlocks(pif, sampleSequence());
    retireBlocks(pif, {5000});  // close the last region
    EXPECT_GE(pif.regionsRecorded(), 3u);
}

TEST(PifPrefetcher, SecondOccurrenceTriggersPrefetchOfRecordedStream)
{
    PifPrefetcher pif(smallPif());
    const auto seq = sampleSequence();

    // First pass records; interpose a long excursion to flush the
    // spatial compactor.
    retireBlocks(pif, seq);
    retireBlocks(pif, {7000, 8000, 9000});

    // The recurrence: a not-prefetched fetch of the stream head.
    pif.onFetchAccess(fetchOf(1000));

    std::vector<Addr> out;
    pif.drainRequests(out, 64);
    // Every block of the recorded sequence should be prefetched.
    for (Addr b : seq) {
        EXPECT_NE(std::find(out.begin(), out.end(), b), out.end())
            << "block " << b << " was not prefetched";
    }
}

TEST(PifPrefetcher, PrefetchedFetchDoesNotTrigger)
{
    PifPrefetcher pif(smallPif());
    retireBlocks(pif, sampleSequence());
    retireBlocks(pif, {7000});

    // Delivered from a prefetched line: not a stream trigger.
    pif.onFetchAccess(fetchOf(1000, true, true));
    std::vector<Addr> out;
    pif.drainRequests(out, 64);
    EXPECT_TRUE(out.empty());
}

TEST(PifPrefetcher, UntaggedTriggerDoesNotIndex)
{
    PifPrefetcher pif(smallPif());
    // Record the stream with untagged triggers (as if prefetched).
    retireBlocks(pif, sampleSequence(), 0, false);
    retireBlocks(pif, {7000}, 0, false);

    pif.onFetchAccess(fetchOf(1000));
    std::vector<Addr> out;
    pif.drainRequests(out, 64);
    EXPECT_TRUE(out.empty()) << "untagged triggers must not be indexed";
}

TEST(PifPrefetcher, TrapLevelsRecordSeparately)
{
    PifConfig cfg = smallPif();
    cfg.separateTrapLevels = true;
    PifPrefetcher pif(cfg);

    retireBlocks(pif, {1000, 1001}, 0);
    retireBlocks(pif, {6000, 6001}, 1);  // handler interleaves
    retireBlocks(pif, {1002, 2000}, 0);
    retireBlocks(pif, {9000}, 0);
    retireBlocks(pif, {9500}, 1);

    // TL0 history must contain a region at 1000 whose bits include
    // +1 and +2 despite the interleaved handler blocks.
    const HistoryBuffer &h0 = pif.history(0);
    bool found = false;
    for (std::uint64_t s = 0; s < h0.tail(); ++s) {
        if (!h0.valid(s))
            continue;
        const SpatialRegion &r = h0.at(s);
        if (r.triggerBlock() == 1000 && r.testOffset(1, cfg.blocksBefore)
            && r.testOffset(2, cfg.blocksBefore)) {
            found = true;
        }
        EXPECT_EQ(r.trapLevel, 0);
    }
    EXPECT_TRUE(found)
        << "handler interleaving fragmented the TL0 region";

    // TL1 history holds only handler regions.
    const HistoryBuffer &h1 = pif.history(1);
    EXPECT_GE(h1.tail(), 1u);
    for (std::uint64_t s = 0; s < h1.tail(); ++s) {
        if (h1.valid(s)) {
            EXPECT_EQ(h1.at(s).trapLevel, 1);
        }
    }
}

TEST(PifPrefetcher, CombinedModeUsesOneChain)
{
    PifConfig cfg = smallPif();
    cfg.separateTrapLevels = false;
    PifPrefetcher pif(cfg);
    retireBlocks(pif, {1000}, 0);
    retireBlocks(pif, {6000}, 1);
    retireBlocks(pif, {2000}, 0);
    // Both trap levels land in chain 0.
    EXPECT_EQ(&pif.history(0), &pif.history(1));
}

TEST(PifPrefetcher, CoverageCountsCorrectPathAccesses)
{
    PifPrefetcher pif(smallPif());
    pif.onFetchAccess(fetchOf(100));          // uncovered
    pif.onFetchAccess(fetchOf(101, true, true));  // covered (prefetched)
    EXPECT_EQ(pif.totalAccesses(0), 2u);
    EXPECT_EQ(pif.coveredAccesses(0), 1u);
    EXPECT_DOUBLE_EQ(pif.coverage(0), 0.5);
}

TEST(PifPrefetcher, WrongPathAccessesNotCounted)
{
    PifPrefetcher pif(smallPif());
    FetchInfo f = fetchOf(100);
    f.correctPath = false;
    pif.onFetchAccess(f);
    EXPECT_EQ(pif.totalAccesses(0), 0u);
}

TEST(PifPrefetcher, DrainHonoursMaxAndDedups)
{
    PifPrefetcher pif(smallPif());
    retireBlocks(pif, sampleSequence());
    retireBlocks(pif, {7000});
    pif.onFetchAccess(fetchOf(1000));

    std::vector<Addr> first;
    pif.drainRequests(first, 2);
    EXPECT_EQ(first.size(), 2u);
    std::vector<Addr> rest;
    pif.drainRequests(rest, 64);
    for (Addr b : first) {
        EXPECT_EQ(std::count(rest.begin(), rest.end(), b), 0)
            << "block " << b << " drained twice";
    }
}

TEST(PifPrefetcher, LoopIterationsCompactAway)
{
    PifPrefetcher pif(smallPif());
    // 50 iterations of a loop spanning blocks 1000-1001.
    for (int i = 0; i < 50; ++i)
        retireBlocks(pif, {1000, 1001});
    retireBlocks(pif, {5000});
    // One region record for the loop (plus at most the closer).
    EXPECT_LE(pif.regionsRecorded(), 2u);
}

TEST(PifPrefetcher, ResetClearsEverything)
{
    PifPrefetcher pif(smallPif());
    retireBlocks(pif, sampleSequence());
    pif.onFetchAccess(fetchOf(1000));
    pif.reset();
    EXPECT_EQ(pif.regionsRecorded(), 0u);
    EXPECT_EQ(pif.totalAccesses(0), 0u);
    std::vector<Addr> out;
    EXPECT_EQ(pif.drainRequests(out, 16), 0u);
}

TEST(PifPrefetcher, UnboundedStorageNeverForgets)
{
    PifConfig cfg = smallPif();
    PifPrefetcher pif(cfg, true);
    // Record far more regions than the bounded capacity would hold.
    for (Addr b = 0; b < 10000; b += 10)
        retireBlocks(pif, {b});
    retireBlocks(pif, {100000});
    EXPECT_GE(pif.regionsRecorded(), 900u);
    // The very first stream is still replayable.
    pif.onFetchAccess(fetchOf(0));
    std::vector<Addr> out;
    pif.drainRequests(out, 8);
    EXPECT_FALSE(out.empty());
}

TEST(PifPrefetcher, SabAdvancesAlongStream)
{
    PifPrefetcher pif(smallPif());
    // Record a long stream of single-block regions.
    std::vector<Addr> stream;
    for (Addr b = 0; b < 40; ++b)
        stream.push_back(1000 + b * 100);
    retireBlocks(pif, stream);
    retireBlocks(pif, {90000});

    pif.onFetchAccess(fetchOf(1000));
    std::vector<Addr> out;
    pif.drainRequests(out, 256);
    const std::size_t initial = out.size();
    EXPECT_GE(initial, 7u);  // window worth of regions

    // March along the stream: more of it gets prefetched.
    pif.onFetchAccess(fetchOf(1300, true, true));
    pif.onFetchAccess(fetchOf(1600, true, true));
    out.clear();
    pif.drainRequests(out, 256);
    EXPECT_FALSE(out.empty());
}

} // namespace
} // namespace pifetch
