/**
 * @file
 * History buffer tests.
 */

#include <gtest/gtest.h>

#include "pif/history_buffer.hh"

namespace pifetch {
namespace {

SpatialRegion
rec(Addr trigger_pc)
{
    SpatialRegion r;
    r.triggerPc = trigger_pc;
    return r;
}

TEST(HistoryBuffer, SequenceNumbersAreMonotone)
{
    HistoryBuffer h(8);
    EXPECT_EQ(h.append(rec(1)), 0u);
    EXPECT_EQ(h.append(rec(2)), 1u);
    EXPECT_EQ(h.tail(), 2u);
}

TEST(HistoryBuffer, ReadBackWhileValid)
{
    HistoryBuffer h(4);
    const auto s0 = h.append(rec(0x100));
    const auto s1 = h.append(rec(0x200));
    EXPECT_EQ(h.at(s0).triggerPc, 0x100u);
    EXPECT_EQ(h.at(s1).triggerPc, 0x200u);
}

TEST(HistoryBuffer, OldRecordsInvalidatedByWrap)
{
    HistoryBuffer h(4);
    for (Addr i = 0; i < 6; ++i)
        h.append(rec(i));
    EXPECT_FALSE(h.valid(0));
    EXPECT_FALSE(h.valid(1));
    EXPECT_TRUE(h.valid(2));
    EXPECT_TRUE(h.valid(5));
    EXPECT_EQ(h.at(2).triggerPc, 2u);
}

TEST(HistoryBuffer, FutureSequencesInvalid)
{
    HistoryBuffer h(4);
    h.append(rec(1));
    EXPECT_FALSE(h.valid(1));
    EXPECT_FALSE(h.valid(100));
}

TEST(HistoryBuffer, UnboundedRetainsEverything)
{
    HistoryBuffer h(0);
    for (Addr i = 0; i < 1000; ++i)
        h.append(rec(i));
    EXPECT_TRUE(h.valid(0));
    EXPECT_EQ(h.at(0).triggerPc, 0u);
    EXPECT_EQ(h.at(999).triggerPc, 999u);
}

TEST(HistoryBufferDeath, ReadingInvalidPanics)
{
    HistoryBuffer h(2);
    h.append(rec(1));
    h.append(rec(2));
    h.append(rec(3));
    EXPECT_DEATH(h.at(0), "overwritten");
}

TEST(HistoryBuffer, ResetEmpties)
{
    HistoryBuffer h(4);
    h.append(rec(1));
    h.reset();
    EXPECT_EQ(h.tail(), 0u);
    EXPECT_FALSE(h.valid(0));
}

/** Property: with capacity C, exactly the last min(n, C) are valid. */
class HistoryCapacity : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(HistoryCapacity, ExactlyLastCRecordsValid)
{
    const std::uint64_t cap = GetParam();
    HistoryBuffer h(cap);
    const std::uint64_t n = cap * 3 + 1;
    for (std::uint64_t i = 0; i < n; ++i)
        h.append(rec(i));
    std::uint64_t valid = 0;
    for (std::uint64_t s = 0; s < n; ++s) {
        if (h.valid(s)) {
            ++valid;
            EXPECT_EQ(h.at(s).triggerPc, s);
        }
    }
    EXPECT_EQ(valid, cap);
}

INSTANTIATE_TEST_SUITE_P(Capacities, HistoryCapacity,
                         ::testing::Values(1u, 2u, 7u, 64u, 1024u));

} // namespace
} // namespace pifetch
