/**
 * @file
 * Shared helpers for handcrafted test programs.
 */

#pragma once

#include "trace/program.hh"

namespace pifetch {
namespace testutil {

/** Append a block to @p fn (addresses fixed up by layoutAll). */
inline void
addBlock(Function &fn, std::uint32_t instrs, BlockTerm term,
         std::uint32_t target_or_callee = 0, double taken_prob = 0.0)
{
    BasicBlock b;
    b.numInstrs = instrs;
    b.term = term;
    if (term == BlockTerm::Call)
        b.callee = target_or_callee;
    else
        b.targetBlock = target_or_callee;
    b.takenProb = taken_prob;
    fn.blocks.push_back(b);
}

/** Lay out all functions contiguously, block-aligned, and validate. */
inline void
layoutAll(Program &prog, Addr base = 0x10000)
{
    Addr cursor = base;
    for (Function &fn : prog.functions) {
        cursor = (cursor + blockBytes - 1) & ~(blockBytes - 1);
        fn.entry = cursor;
        for (BasicBlock &b : fn.blocks) {
            b.start = cursor;
            cursor = b.end();
        }
    }
    prog.codeEnd = (cursor + blockBytes - 1) & ~(blockBytes - 1);
    prog.validate();
}

/**
 * Minimal runnable program: dispatcher + one root that calls a leaf.
 *
 * dispatcher: B0 call -> root, B1 jump -> B0
 * root:       B0 call -> leaf, B1 cond(B3, p), B2 fall, B3 return
 * leaf:       B0 return
 *
 * @param cond_taken_prob Probability of the root's conditional branch.
 */
inline Program
tinyProgram(double cond_taken_prob = 0.0)
{
    Program prog;
    prog.functions.resize(3);

    Function &disp = prog.functions[0];
    addBlock(disp, 4, BlockTerm::Call, 1);
    addBlock(disp, 4, BlockTerm::Jump, 0);

    Function &root = prog.functions[1];
    addBlock(root, 4, BlockTerm::Call, 2);
    addBlock(root, 4, BlockTerm::CondBranch, 3, cond_taken_prob);
    addBlock(root, 4, BlockTerm::FallThrough);
    addBlock(root, 4, BlockTerm::Return);

    Function &leaf = prog.functions[2];
    addBlock(leaf, 4, BlockTerm::Return);

    prog.transactionRoots = {1};
    prog.transactionWeights = {1.0};
    prog.dispatcher = 0;

    // A handler for interrupt tests.
    Function handler;
    addBlock(handler, 6, BlockTerm::Return);
    handler.isHandler = true;
    prog.functions.push_back(handler);
    prog.handlers = {3};

    layoutAll(prog);
    return prog;
}

} // namespace testutil
} // namespace pifetch
