/**
 * @file
 * Workload-spec tests: strict JSON decode/serialize round trips,
 * lowering determinism (and preset identity), program linking, the
 * malformed-spec negative battery and the committed workload zoo.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/digest.hh"
#include "sim/workloads.hh"
#include "trace/workload_spec.hh"

namespace pifetch {
namespace {

/** A spec exercising every JSON member at least once. */
const char *const kRichSpec = R"({
  "name": "rich_spec",
  "title": "Rich spec",
  "group": "Test",
  "description": "every member populated",
  "seed": 12345,
  "programs": [
    {
      "name": "front",
      "base": "apache",
      "params": {
        "seed": 42,
        "appFunctions": 500,
        "libFunctions": 60,
        "handlers": 6,
        "meanFnBlocks": 5.5,
        "maxFnBlocks": 24,
        "meanHandlerBlocks": 3.0,
        "meanBasicBlockInstrs": 6.0,
        "callDensity": 0.08,
        "meanAppCalls": 1.5,
        "condDensity": 0.2,
        "jumpDensity": 0.03,
        "biasedFraction": 0.8,
        "dataDepLo": 0.25,
        "dataDepHi": 0.7,
        "loopsPerFunction": 0.5,
        "meanLoopIter": 8.0,
        "zipfS": 0.6,
        "callLayers": 4,
        "transactions": 3,
        "interruptRate": 0.0001,
        "maxCallDepth": 20
      }
    },
    {"name": "back", "base": "db2"}
  ],
  "phases": [
    {
      "name": "mixed",
      "instructions": 30000,
      "mix": {"front": 3.0, "back": 1.0},
      "interruptRate": 0.0002,
      "interruptRateEnd": 0.0004
    },
    {"name": "steady", "instructions": 50000}
  ]
})";

std::string
canon(const WorkloadSpec &spec)
{
    return toJson(specToResult(spec), 2);
}

/** Digest of the first @p n retired instructions. */
std::uint64_t
streamDigest(const Program &prog, const ExecutorConfig &cfg,
             InstCount n)
{
    Executor exec(prog, cfg);
    StreamDigest d;
    exec.run(n, [&](const RetiredInstr &ri) {
        d.add(ri.pc);
        d.add(ri.target);
        d.add(static_cast<std::uint64_t>(ri.kind) << 8 |
              static_cast<std::uint64_t>(ri.trapLevel) << 1 |
              (ri.taken ? 1 : 0));
    });
    return d.value();
}

// -------------------------------------------------------- round trips

TEST(WorkloadSpec, DecodesEveryField)
{
    std::string err;
    const auto spec = parseWorkloadSpec(kRichSpec, &err);
    ASSERT_TRUE(spec.has_value()) << err;

    EXPECT_EQ(spec->name, "rich_spec");
    EXPECT_EQ(spec->title, "Rich spec");
    EXPECT_EQ(spec->group, "Test");
    EXPECT_EQ(spec->description, "every member populated");
    EXPECT_EQ(spec->seed, 12345u);

    ASSERT_EQ(spec->programs.size(), 2u);
    const WorkloadParams &p = spec->programs[0].params;
    EXPECT_EQ(spec->programs[0].name, "front");
    EXPECT_EQ(spec->programs[0].base, "apache");
    EXPECT_EQ(p.name, "front");  // program name mirrors into params
    EXPECT_EQ(p.seed, 42u);
    EXPECT_EQ(p.appFunctions, 500u);
    EXPECT_EQ(p.libFunctions, 60u);
    EXPECT_EQ(p.handlers, 6u);
    EXPECT_DOUBLE_EQ(p.meanFnBlocks, 5.5);
    EXPECT_EQ(p.maxFnBlocks, 24u);
    EXPECT_DOUBLE_EQ(p.meanHandlerBlocks, 3.0);
    EXPECT_DOUBLE_EQ(p.meanBasicBlockInstrs, 6.0);
    EXPECT_DOUBLE_EQ(p.callDensity, 0.08);
    EXPECT_DOUBLE_EQ(p.meanAppCalls, 1.5);
    EXPECT_DOUBLE_EQ(p.condDensity, 0.2);
    EXPECT_DOUBLE_EQ(p.jumpDensity, 0.03);
    EXPECT_DOUBLE_EQ(p.biasedFraction, 0.8);
    EXPECT_DOUBLE_EQ(p.dataDepLo, 0.25);
    EXPECT_DOUBLE_EQ(p.dataDepHi, 0.7);
    EXPECT_DOUBLE_EQ(p.loopsPerFunction, 0.5);
    EXPECT_DOUBLE_EQ(p.meanLoopIter, 8.0);
    EXPECT_DOUBLE_EQ(p.zipfS, 0.6);
    EXPECT_EQ(p.callLayers, 4u);
    EXPECT_EQ(p.transactions, 3u);
    EXPECT_DOUBLE_EQ(p.interruptRate, 0.0001);
    EXPECT_EQ(p.maxCallDepth, 20u);

    // An override-free program resolves to its preset's params.
    EXPECT_EQ(spec->programs[1].base, "db2");
    EXPECT_EQ(spec->programs[1].params.seed,
              workloadParams(ServerWorkload::OltpDb2).seed);
    EXPECT_EQ(spec->programs[1].params.name, "back");

    ASSERT_EQ(spec->phases.size(), 2u);
    const WorkloadSpecPhase &ph = spec->phases[0];
    EXPECT_EQ(ph.name, "mixed");
    EXPECT_EQ(ph.instructions, 30'000u);
    ASSERT_EQ(ph.mix.size(), 2u);
    EXPECT_EQ(ph.mix[0].first, "front");
    EXPECT_DOUBLE_EQ(ph.mix[0].second, 3.0);
    EXPECT_DOUBLE_EQ(ph.interruptRate, 0.0002);
    EXPECT_DOUBLE_EQ(ph.interruptRateEnd, 0.0004);
    // Absent rates inherit (negative sentinel), absent mix = uniform.
    EXPECT_LT(spec->phases[1].interruptRate, 0.0);
    EXPECT_LT(spec->phases[1].interruptRateEnd, 0.0);
    EXPECT_TRUE(spec->phases[1].mix.empty());
}

TEST(WorkloadSpec, CanonicalSerializationIsIdempotent)
{
    std::string err;
    const auto spec = parseWorkloadSpec(kRichSpec, &err);
    ASSERT_TRUE(spec.has_value()) << err;

    // parse -> serialize -> parse -> serialize is a fixed point.
    const std::string one = canon(*spec);
    const auto again = parseWorkloadSpec(one, &err);
    ASSERT_TRUE(again.has_value()) << err;
    EXPECT_EQ(canon(*again), one);
}

TEST(WorkloadSpec, DefaultsApplyWhenMembersAbsent)
{
    std::string err;
    const auto spec = parseWorkloadSpec(
        R"({"name": "tiny", "programs": [{"name": "a", "base": "zeus"}]})",
        &err);
    ASSERT_TRUE(spec.has_value()) << err;
    EXPECT_EQ(spec->title, "tiny");  // title defaults to the key
    EXPECT_EQ(spec->group, "Zoo");
    EXPECT_TRUE(spec->phases.empty());

    // Seedless bespoke programs derive distinct per-program seeds.
    const auto bespoke = parseWorkloadSpec(
        R"({"name": "two", "seed": 9, "programs": [
            {"name": "a"}, {"name": "b"}]})",
        &err);
    ASSERT_TRUE(bespoke.has_value()) << err;
    EXPECT_NE(bespoke->programs[0].params.seed,
              bespoke->programs[1].params.seed);
}

// ----------------------------------------------------------- lowering

TEST(WorkloadSpec, LoweringIsDeterministic)
{
    std::string err;
    const auto spec = parseWorkloadSpec(kRichSpec, &err);
    ASSERT_TRUE(spec.has_value()) << err;

    const LoweredWorkload a = lowerWorkloadSpec(*spec);
    const LoweredWorkload b = lowerWorkloadSpec(*spec);
    const Program pa = a.build();
    const Program pb = b.build();
    ASSERT_EQ(pa.footprintBytes(), pb.footprintBytes());
    ASSERT_EQ(pa.transactionRoots, pb.transactionRoots);

    // Same spec + same seed => byte-identical retire stream.
    EXPECT_EQ(streamDigest(pa, executorConfigFor(a), 20'000),
              streamDigest(pb, executorConfigFor(b), 20'000));

    // A different seed offset changes the stream (no accidental
    // seed-fold collapse across cores).
    EXPECT_NE(streamDigest(a.build(1), executorConfigFor(a, 1, 1),
                           20'000),
              streamDigest(pa, executorConfigFor(a), 20'000));
}

TEST(WorkloadSpec, BaseOnlySpecMatchesItsPresetBitForBit)
{
    // A single-program spec that only names a preset must lower to
    // the preset's exact Program and executor behavior: the spec
    // layer adds nothing when nothing is specified.
    std::string err;
    const auto spec = parseWorkloadSpec(
        R"({"name": "just_db2", "programs": [
            {"name": "db2prog", "base": "db2"}]})",
        &err);
    ASSERT_TRUE(spec.has_value()) << err;
    const LoweredWorkload lw = lowerWorkloadSpec(*spec);

    const Program from_spec = lw.build();
    const Program preset =
        buildWorkloadProgram(ServerWorkload::OltpDb2);
    ASSERT_EQ(from_spec.footprintBytes(), preset.footprintBytes());
    ASSERT_EQ(from_spec.transactionRoots, preset.transactionRoots);

    const ExecutorConfig spec_cfg = executorConfigFor(lw);
    EXPECT_TRUE(spec_cfg.phases.empty());  // classic dispatch path
    EXPECT_EQ(streamDigest(from_spec, spec_cfg, 50'000),
              streamDigest(preset,
                           executorConfigFor(
                               ServerWorkload::OltpDb2),
                           50'000));
}

TEST(WorkloadSpec, LinkedProgramsValidateAndPartitionRoots)
{
    std::string err;
    const auto spec = parseWorkloadSpec(kRichSpec, &err);
    ASSERT_TRUE(spec.has_value()) << err;
    const LoweredWorkload lw = lowerWorkloadSpec(*spec);

    const Program merged = lw.build();  // build() validates
    const std::vector<std::uint32_t> spans = lw.rootSpans();
    ASSERT_EQ(spans.size(), 2u);
    std::size_t total = 0;
    for (const std::uint32_t s : spans) {
        EXPECT_GT(s, 0u);
        total += s;
    }
    EXPECT_EQ(total, merged.transactionRoots.size());

    // Linking keeps one dispatcher but must still grow the image
    // beyond either standalone part.
    const Program part0 = WorkloadGenerator::build(lw.params(0));
    const Program part1 = WorkloadGenerator::build(lw.params(1));
    EXPECT_GT(merged.footprintBytes(), part0.footprintBytes());
    EXPECT_GT(merged.footprintBytes(), part1.footprintBytes());
}

TEST(WorkloadSpec, PhaseMixSteersDispatch)
{
    // Two specs differing only in their phase mix must produce
    // different retire streams: the two-level dispatch actually
    // consults the mix.
    const char *const tmpl = R"({
      "name": "mix_probe",
      "seed": 5,
      "programs": [{"name": "a", "base": "db2"},
                    {"name": "b", "base": "zeus"}],
      "phases": [{"name": "p", "instructions": 10000,
                   "mix": {"a": %s, "b": %s}}]
    })";
    char buf_a[512];
    char buf_b[512];
    std::snprintf(buf_a, sizeof buf_a, tmpl, "9.0", "1.0");
    std::snprintf(buf_b, sizeof buf_b, tmpl, "1.0", "9.0");

    std::string err;
    const auto sa = parseWorkloadSpec(buf_a, &err);
    ASSERT_TRUE(sa.has_value()) << err;
    const auto sb = parseWorkloadSpec(buf_b, &err);
    ASSERT_TRUE(sb.has_value()) << err;

    const LoweredWorkload la = lowerWorkloadSpec(*sa);
    const LoweredWorkload lb = lowerWorkloadSpec(*sb);
    // Identical linked programs (the mix is an executor concern)...
    EXPECT_EQ(la.build().footprintBytes(), lb.build().footprintBytes());
    // ...but the phase schedule dispatches differently.
    EXPECT_NE(streamDigest(la.build(), executorConfigFor(la), 30'000),
              streamDigest(lb.build(), executorConfigFor(lb), 30'000));
}

// --------------------------------------------------- negative battery

TEST(WorkloadSpec, MalformedSpecsFailWithAMessage)
{
    // Every entry must be rejected by the strict parser with a
    // non-empty diagnostic — never a crash, hang or allocation blowup.
    const std::vector<const char *> malformed = {
        // JSON-level and root-shape errors.
        R"({"name": )",                                     // bad JSON
        R"([1, 2, 3])",                                     // array root
        R"("spec")",                                        // string root
        // Top-level member errors.
        R"({"programs": [{"name": "a", "base": "db2"}]})",  // no name
        R"({"name": "Bad", "programs": [{"name": "a", "base": "db2"}]})",
        R"({"name": "x y", "programs": [{"name": "a", "base": "db2"}]})",
        R"({"name": "ok", "programs": [{"name": "a", "base": "db2"}],
            "surprise": 1})",                               // unknown key
        R"({"name": "ok", "seed": -4,
            "programs": [{"name": "a", "base": "db2"}]})",  // negative u64
        R"({"name": "ok"})",                                // no programs
        R"({"name": "ok", "programs": []})",                // empty list
        R"({"name": "ok", "programs": "db2"})",             // wrong kind
        // Program-level errors.
        R"({"name": "ok", "programs": [42]})",              // not object
        R"({"name": "ok", "programs": [{"base": "db2"}]})", // no name
        R"({"name": "ok", "programs": [
            {"name": "a", "base": "vax780"}]})",            // bad preset
        R"({"name": "ok", "programs": [
            {"name": "a", "base": "db2", "weight": 2}]})",  // unknown key
        R"({"name": "ok", "programs": [
            {"name": "a", "base": "db2"},
            {"name": "a", "base": "zeus"}]})",              // dup name
        R"({"name": "ok", "programs": [
            {"name": "a", "base": "db2",
             "params": {"blockCount": 5}}]})",              // unknown knob
        R"({"name": "ok", "programs": [
            {"name": "a", "base": "db2",
             "params": {"appFunctions": 8589934592}}]})",   // > 32 bits
        R"({"name": "ok", "programs": [
            {"name": "a", "base": "db2",
             "params": {"appFunctions": 3}}]})",            // < txns + 2
        R"({"name": "ok", "programs": [
            {"name": "a", "base": "db2",
             "params": {"zipfS": 9.5}}]})",                 // out of range
        R"({"name": "ok", "programs": [
            {"name": "a", "base": "db2",
             "params": {"interruptRate": 0.5}}]})",         // rate cap
        R"({"name": "ok", "programs": [
            {"name": "a", "base": "db2",
             "params": {"meanFnBlocks": "six"}}]})",        // wrong kind
        // Phase-level errors.
        R"({"name": "ok", "programs": [{"name": "a", "base": "db2"}],
            "phases": [{"instructions": 5000}]})",          // no name
        R"({"name": "ok", "programs": [{"name": "a", "base": "db2"}],
            "phases": [{"name": "p"}]})",                   // no budget
        R"({"name": "ok", "programs": [{"name": "a", "base": "db2"}],
            "phases": [{"name": "p", "instructions": 500}]})",
        R"({"name": "ok", "programs": [{"name": "a", "base": "db2"}],
            "phases": [{"name": "p",
                        "instructions": 2000000000}]})",    // over cap
        R"({"name": "ok", "programs": [{"name": "a", "base": "db2"}],
            "phases": [{"name": "p", "instructions": 5000,
                        "speed": 3}]})",                    // unknown key
        R"({"name": "ok", "programs": [{"name": "a", "base": "db2"}],
            "phases": [{"name": "p", "instructions": 5000},
                       {"name": "p", "instructions": 5000}]})",
        R"({"name": "ok", "programs": [{"name": "a", "base": "db2"}],
            "phases": [{"name": "p", "instructions": 5000,
                        "mix": {"ghost": 1.0}}]})",         // bad ref
        R"({"name": "ok", "programs": [{"name": "a", "base": "db2"}],
            "phases": [{"name": "p", "instructions": 5000,
                        "mix": {"a": -1.0}}]})",            // negative
        R"({"name": "ok", "programs": [{"name": "a", "base": "db2"}],
            "phases": [{"name": "p", "instructions": 5000,
                        "mix": {"a": 0.0}}]})",             // zero sum
        R"({"name": "ok", "programs": [{"name": "a", "base": "db2"}],
            "phases": [{"name": "p", "instructions": 5000,
                        "mix": "uniform"}]})",              // wrong kind
        R"({"name": "ok", "programs": [{"name": "a", "base": "db2"}],
            "phases": [{"name": "p", "instructions": 5000,
                        "interruptRate": 0.2}]})",          // rate cap
        R"({"name": "ok", "programs": [{"name": "a", "base": "db2"}],
            "phases": [{"name": "p", "instructions": 5000,
                        "interruptRateEnd": 0.2}]})",       // ramp cap
    };
    ASSERT_GE(malformed.size(), 20u);

    for (std::size_t i = 0; i < malformed.size(); ++i) {
        SCOPED_TRACE("malformed[" + std::to_string(i) + "]");
        std::string err;
        const auto spec = parseWorkloadSpec(malformed[i], &err);
        EXPECT_FALSE(spec.has_value()) << malformed[i];
        EXPECT_FALSE(err.empty());
    }

    // Count caps reject before any generator work happens.
    std::string many_programs = R"({"name": "ok", "programs": [)";
    for (int i = 0; i < 9; ++i) {
        many_programs += std::string(i ? "," : "") + R"({"name": "p)" +
                         std::to_string(i) + R"(", "base": "db2"})";
    }
    many_programs += "]}";
    std::string err;
    EXPECT_FALSE(parseWorkloadSpec(many_programs, &err).has_value());
    EXPECT_FALSE(err.empty());

    std::string many_phases =
        R"({"name": "ok", "programs": [{"name": "a", "base": "db2"}],
            "phases": [)";
    for (int i = 0; i < 17; ++i) {
        many_phases += std::string(i ? "," : "") + R"({"name": "f)" +
                       std::to_string(i) + R"(", "instructions": 5000})";
    }
    many_phases += "]}";
    EXPECT_FALSE(parseWorkloadSpec(many_phases, &err).has_value());
    EXPECT_FALSE(err.empty());
}

TEST(WorkloadSpec, FileLoaderReportsThePath)
{
    std::string err;
    EXPECT_FALSE(
        loadWorkloadSpecFile("/nonexistent/spec.json", &err)
            .has_value());
    EXPECT_NE(err.find("/nonexistent/spec.json"), std::string::npos)
        << err;
}

// ---------------------------------------------------------------- zoo

TEST(WorkloadZoo, ShipsTheCuratedSpecs)
{
    const std::vector<WorkloadZooEntry> zoo = workloadZoo();
    ASSERT_GE(zoo.size(), 6u);
    for (const char *key :
         {"microservice_fanout", "jit_churn", "cold_start_storm",
          "diurnal_ramp", "batch_analytics", "mixed_tenant"}) {
        EXPECT_TRUE(findZooEntry(key).has_value()) << key;
    }
    EXPECT_FALSE(findZooEntry("no_such_spec").has_value());
}

TEST(WorkloadZoo, EveryEntryLoadsValidatesAndRoundTrips)
{
    for (const WorkloadZooEntry &e : workloadZoo()) {
        SCOPED_TRACE(e.key);
        std::string err;
        const auto spec = loadWorkloadSpecFile(e.path, &err);
        ASSERT_TRUE(spec.has_value()) << err;
        EXPECT_EQ(spec->name, e.key);
        EXPECT_FALSE(validateWorkloadSpec(*spec).has_value());

        // Canonical round trip holds for the whole zoo.
        const std::string one = canon(*spec);
        const auto again = parseWorkloadSpec(one, &err);
        ASSERT_TRUE(again.has_value()) << err;
        EXPECT_EQ(canon(*again), one);

        // And every entry lowers to a runnable workload.
        const WorkloadRef w = workloadRefFromSpec(*spec);
        EXPECT_TRUE(w.isSpec());
        EXPECT_EQ(w.key(), e.key);
        const Program prog = w.buildProgram();
        EXPECT_GT(prog.footprintBytes(), 0u);
    }
}

} // namespace
} // namespace pifetch
