/**
 * @file
 * Trace engine and cycle engine integration tests.
 */

#include <gtest/gtest.h>

#include "pif/pif_prefetcher.hh"
#include "sim/cycle_engine.hh"
#include "sim/trace_engine.hh"
#include "sim/workloads.hh"

namespace pifetch {
namespace {

constexpr InstCount kWarmup = 200'000;
constexpr InstCount kMeasure = 400'000;

SystemConfig
testConfig()
{
    return SystemConfig{};
}

TraceRunResult
runTrace(ServerWorkload w, PrefetcherKind kind)
{
    const SystemConfig cfg = testConfig();
    const Program prog = buildWorkloadProgram(w);
    TraceEngine engine(cfg, prog, executorConfigFor(w),
                       makePrefetcher(kind, cfg));
    return engine.run(kWarmup, kMeasure);
}

TEST(TraceEngine, BaselineHasSubstantialMisses)
{
    const TraceRunResult r = runTrace(ServerWorkload::OltpDb2,
                                      PrefetcherKind::None);
    EXPECT_EQ(r.instrs, kMeasure);
    EXPECT_GT(r.accesses, kMeasure / 50);
    // The paper's premise: server workloads thrash the 64KB L1-I.
    EXPECT_GT(r.missRatio(), 0.02);
    EXPECT_GT(r.mispredicts, 100u);
    EXPECT_GT(r.wrongPathFetches, 100u);
}

TEST(TraceEngine, PifEliminatesMostMisses)
{
    const TraceRunResult base = runTrace(ServerWorkload::OltpDb2,
                                         PrefetcherKind::None);
    const TraceRunResult pif = runTrace(ServerWorkload::OltpDb2,
                                        PrefetcherKind::Pif);
    EXPECT_LT(pif.misses, base.misses / 4);
    EXPECT_GT(pif.pifCoverage, 0.8);
    EXPECT_GT(pif.prefetchFills, 0u);
    EXPECT_GT(pif.usefulPrefetches, 0u);
}

TEST(TraceEngine, PrefetcherOrderingMatchesPaper)
{
    // Figure 10 (left): PIF > TIFS and PIF > next-line on misses
    // eliminated.
    const TraceRunResult base = runTrace(ServerWorkload::OltpDb2,
                                         PrefetcherKind::None);
    const TraceRunResult nl = runTrace(ServerWorkload::OltpDb2,
                                       PrefetcherKind::NextLine);
    const TraceRunResult tifs = runTrace(ServerWorkload::OltpDb2,
                                         PrefetcherKind::Tifs);
    const TraceRunResult pif = runTrace(ServerWorkload::OltpDb2,
                                        PrefetcherKind::Pif);
    EXPECT_LT(nl.misses, base.misses);
    EXPECT_LT(tifs.misses, base.misses);
    EXPECT_LT(pif.misses, tifs.misses);
    EXPECT_LT(pif.misses, nl.misses);
}

TEST(TraceEngine, DeterministicAcrossRuns)
{
    const TraceRunResult a = runTrace(ServerWorkload::WebZeus,
                                      PrefetcherKind::Pif);
    const TraceRunResult b = runTrace(ServerWorkload::WebZeus,
                                      PrefetcherKind::Pif);
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.prefetchIssued, b.prefetchIssued);
    EXPECT_DOUBLE_EQ(a.pifCoverage, b.pifCoverage);
}

TEST(TraceEngine, AccessSequenceUnperturbedByPrefetching)
{
    // The functional engine's fetch sequence must not depend on the
    // prefetcher (only hit/miss outcomes change).
    const TraceRunResult none = runTrace(ServerWorkload::DssQry17,
                                         PrefetcherKind::None);
    const TraceRunResult pif = runTrace(ServerWorkload::DssQry17,
                                        PrefetcherKind::Pif);
    EXPECT_EQ(none.accesses, pif.accesses);
    EXPECT_EQ(none.mispredicts, pif.mispredicts);
    EXPECT_EQ(none.interrupts, pif.interrupts);
}

TEST(TraceEngine, TrapLevelCoverageReported)
{
    const TraceRunResult pif = runTrace(ServerWorkload::WebApache,
                                        PrefetcherKind::Pif);
    EXPECT_GT(pif.pifCoverageTl0, 0.5);
    EXPECT_GT(pif.pifCoverageTl1, 0.0);
    EXPECT_LE(pif.pifCoverage, 1.0);
}

CycleRunResult
runCycle(ServerWorkload w, PrefetcherKind kind)
{
    const SystemConfig cfg = testConfig();
    const Program prog = buildWorkloadProgram(w);
    CycleEngine engine(cfg, prog, executorConfigFor(w), kind);
    return engine.run(kWarmup, kMeasure);
}

TEST(CycleEngine, BaselineUipcIsSane)
{
    const CycleRunResult r = runCycle(ServerWorkload::OltpDb2,
                                      PrefetcherKind::None);
    EXPECT_GT(r.uipc, 0.1);
    EXPECT_LT(r.uipc, 3.0);
    EXPECT_EQ(r.instrs, kMeasure);
    EXPECT_GT(r.fetchStallCycles, 0u);
    EXPECT_GT(r.demandMisses, 0u);
}

TEST(CycleEngine, SpeedupOrderingMatchesPaper)
{
    // Figure 10 (right): None < prefetchers < Perfect; PIF close to
    // Perfect.
    const double none = runCycle(ServerWorkload::OltpDb2,
                                 PrefetcherKind::None).uipc;
    const double nl = runCycle(ServerWorkload::OltpDb2,
                               PrefetcherKind::NextLine).uipc;
    const double pif = runCycle(ServerWorkload::OltpDb2,
                                PrefetcherKind::Pif).uipc;
    const double perfect = runCycle(ServerWorkload::OltpDb2,
                                    PrefetcherKind::Perfect).uipc;
    EXPECT_GT(nl, none);
    EXPECT_GT(pif, nl);
    EXPECT_GT(perfect, none * 1.05);
    // PIF converges toward the perfect cache (Section 5.6).
    EXPECT_GT(pif, none + 0.7 * (perfect - none));
}

TEST(CycleEngine, PerfectCacheHasNoFetchStalls)
{
    const CycleRunResult r = runCycle(ServerWorkload::OltpDb2,
                                      PrefetcherKind::Perfect);
    EXPECT_EQ(r.fetchStallCycles, 0u);
    EXPECT_EQ(r.demandMisses, 0u);
}

TEST(CycleEngine, UserInstructionsExcludeHandlers)
{
    const CycleRunResult r = runCycle(ServerWorkload::WebApache,
                                      PrefetcherKind::None);
    EXPECT_LT(r.userInstrs, r.instrs);
    EXPECT_GT(r.userInstrs, r.instrs * 9 / 10);
}

TEST(CycleEngine, PrefetchesFlowThroughMshrs)
{
    const CycleRunResult r = runCycle(ServerWorkload::OltpDb2,
                                      PrefetcherKind::Pif);
    EXPECT_GT(r.prefetchFills, 0u);
    EXPECT_GT(r.l2Hits + r.l2Misses, 0u);
}

TEST(CycleEngine, DeterministicAcrossRuns)
{
    const CycleRunResult a = runCycle(ServerWorkload::DssQry2,
                                      PrefetcherKind::Tifs);
    const CycleRunResult b = runCycle(ServerWorkload::DssQry2,
                                      PrefetcherKind::Tifs);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.demandMisses, b.demandMisses);
}

} // namespace
} // namespace pifetch
