/**
 * @file
 * Memory hierarchy (L2 + memory) tests.
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"

namespace pifetch {
namespace {

MemoryConfig
smallMemory()
{
    MemoryConfig cfg;
    cfg.l2SizeBytes = 8 * 1024;  // tiny L2: evictions happen
    cfg.l2Assoc = 4;
    cfg.l2HitLatency = 15;
    cfg.memLatency = 90;
    cfg.interconnectLatency = 10;
    return cfg;
}

TEST(Hierarchy, ColdRequestPaysMemoryLatency)
{
    MemoryHierarchy h(smallMemory());
    EXPECT_EQ(h.request(100), 100u);  // 90 + 10 interconnect
    EXPECT_EQ(h.l2Misses(), 1u);
}

TEST(Hierarchy, SecondRequestHitsL2)
{
    MemoryHierarchy h(smallMemory());
    h.request(100);
    EXPECT_EQ(h.request(100), 25u);  // 15 + 10 interconnect
    EXPECT_EQ(h.l2Hits(), 1u);
}

TEST(Hierarchy, InL2ProbeIsPure)
{
    MemoryHierarchy h(smallMemory());
    EXPECT_FALSE(h.inL2(7));
    h.request(7);
    EXPECT_TRUE(h.inL2(7));
    EXPECT_EQ(h.l2Hits(), 0u);  // probe did not count as an access
}

TEST(Hierarchy, CapacityEvictionsReMiss)
{
    MemoryHierarchy h(smallMemory());
    const std::uint64_t blocks = smallMemory().l2SizeBytes / 64;
    // Stream 4x the capacity through, then revisit the first block.
    for (Addr b = 0; b < 4 * blocks; ++b)
        h.request(b);
    EXPECT_EQ(h.request(0), 100u);  // long evicted
}

TEST(Hierarchy, FlushForgets)
{
    MemoryHierarchy h(smallMemory());
    h.request(42);
    h.flush();
    EXPECT_FALSE(h.inL2(42));
}

TEST(Hierarchy, InstructionFootprintBecomesL2Resident)
{
    // The paper's setup: multi-MB code fits in the 8MB L2, so steady-
    // state instruction misses are L2 hits (15+10 cycles), not memory.
    MemoryConfig cfg;  // default 8MB
    MemoryHierarchy h(cfg);
    const Addr footprint_blocks = 20000;  // ~1.25 MB of code
    for (Addr b = 0; b < footprint_blocks; ++b)
        h.request(b);
    std::uint64_t hits = 0;
    for (Addr b = 0; b < footprint_blocks; ++b)
        hits += h.request(b) == cfg.l2HitLatency +
                                cfg.interconnectLatency ? 1 : 0;
    EXPECT_EQ(hits, footprint_blocks);
}

} // namespace
} // namespace pifetch
