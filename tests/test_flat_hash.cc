/**
 * @file
 * Flat-hash container tests: AddrSet/AddrMap must be drop-in
 * replacements for the std containers on the prefetcher hot paths, so
 * they are checked against std::unordered_set/map references under
 * randomized workloads — including the backward-shift deletion, whose
 * cluster-repair condition is the one subtle piece.
 */

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "common/flat_hash.hh"
#include "common/rng.hh"

namespace pifetch {
namespace {

TEST(AddrSet, BasicInsertEraseContains)
{
    AddrSet s;
    EXPECT_TRUE(s.empty());
    EXPECT_FALSE(s.contains(7));
    EXPECT_EQ(s.count(7), 0u);

    EXPECT_TRUE(s.insert(7));
    EXPECT_FALSE(s.insert(7));  // duplicate
    EXPECT_TRUE(s.contains(7));
    EXPECT_EQ(s.count(7), 1u);
    EXPECT_EQ(s.size(), 1u);

    EXPECT_TRUE(s.erase(7));
    EXPECT_FALSE(s.erase(7));
    EXPECT_FALSE(s.contains(7));
    EXPECT_TRUE(s.empty());

    // Zero is an ordinary key (only invalidAddr is reserved).
    EXPECT_TRUE(s.insert(0));
    EXPECT_TRUE(s.contains(0));
}

TEST(AddrSet, ClearKeepsWorking)
{
    AddrSet s;
    for (Addr k = 0; k < 100; ++k)
        s.insert(k * 64);
    EXPECT_EQ(s.size(), 100u);
    s.clear();
    EXPECT_EQ(s.size(), 0u);
    for (Addr k = 0; k < 100; ++k)
        EXPECT_FALSE(s.contains(k * 64));
    EXPECT_TRUE(s.insert(640));
    EXPECT_TRUE(s.contains(640));
}

TEST(AddrSet, GrowthPreservesMembership)
{
    AddrSet s;
    // Far past several growth thresholds.
    for (Addr k = 1; k <= 5000; ++k)
        ASSERT_TRUE(s.insert(k * 0x9e3779b9ull));
    EXPECT_EQ(s.size(), 5000u);
    for (Addr k = 1; k <= 5000; ++k)
        ASSERT_TRUE(s.contains(k * 0x9e3779b9ull));
    EXPECT_FALSE(s.contains(0x123456789abcull));
}

TEST(AddrSet, RandomizedAgainstStdReference)
{
    // The prefetch-queue usage pattern: bounded population with heavy
    // insert/erase churn. Every operation's return value and the full
    // membership view must match std::unordered_set exactly.
    Rng rng(0xf1a7);
    AddrSet set;
    std::unordered_set<Addr> ref;
    for (int op = 0; op < 200000; ++op) {
        // Small key space forces collisions, duplicates and deletes
        // inside shared probe clusters.
        const Addr key = rng.range(0, 511);
        switch (rng.range(0, 2)) {
          case 0:
            ASSERT_EQ(set.insert(key), ref.insert(key).second);
            break;
          case 1:
            ASSERT_EQ(set.erase(key), ref.erase(key) != 0);
            break;
          default:
            ASSERT_EQ(set.contains(key), ref.count(key) != 0);
            break;
        }
        ASSERT_EQ(set.size(), ref.size());
    }
    for (Addr key = 0; key < 512; ++key)
        ASSERT_EQ(set.contains(key), ref.count(key) != 0);
}

TEST(AddrSetDeathTest, SentinelKeyPanics)
{
    AddrSet s;
    EXPECT_DEATH(s.insert(invalidAddr), "sentinel");
}

TEST(AddrMap, BasicFindAssign)
{
    AddrMap<std::uint64_t> m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.find(42), nullptr);

    m.insertOrAssign(42, 7);
    ASSERT_NE(m.find(42), nullptr);
    EXPECT_EQ(*m.find(42), 7u);
    EXPECT_EQ(m.size(), 1u);

    // Last write wins (the index table's recency semantics).
    m.insertOrAssign(42, 9);
    EXPECT_EQ(*m.find(42), 9u);
    EXPECT_EQ(m.size(), 1u);

    m.clear();
    EXPECT_EQ(m.find(42), nullptr);
    EXPECT_EQ(m.size(), 0u);
}

TEST(AddrMap, RandomizedAgainstStdReference)
{
    Rng rng(0x5eed);
    AddrMap<std::uint64_t> map;
    std::unordered_map<Addr, std::uint64_t> ref;
    for (int op = 0; op < 100000; ++op) {
        const Addr key = rng.range(0, 2047);
        if (rng.chance(0.7)) {
            const std::uint64_t value = rng.range(0, 1u << 20);
            map.insertOrAssign(key, value);
            ref[key] = value;
        } else {
            const std::uint64_t *found = map.find(key);
            const auto it = ref.find(key);
            if (it == ref.end()) {
                ASSERT_EQ(found, nullptr);
            } else {
                ASSERT_NE(found, nullptr);
                ASSERT_EQ(*found, it->second);
            }
        }
        ASSERT_EQ(map.size(), ref.size());
    }
}

} // namespace
} // namespace pifetch
