/**
 * @file
 * MSHR file tests.
 */

#include <gtest/gtest.h>

#include "cache/mshr.hh"

namespace pifetch {
namespace {

TEST(MshrFile, AllocateAndContains)
{
    MshrFile m(2);
    EXPECT_TRUE(m.allocate(10, 100, false));
    EXPECT_TRUE(m.contains(10));
    EXPECT_FALSE(m.contains(11));
}

TEST(MshrFile, RejectsDuplicates)
{
    MshrFile m(4);
    EXPECT_TRUE(m.allocate(10, 100, false));
    EXPECT_FALSE(m.allocate(10, 200, true));
}

TEST(MshrFile, FullRejectsNewAllocations)
{
    MshrFile m(2);
    EXPECT_TRUE(m.allocate(1, 10, false));
    EXPECT_TRUE(m.allocate(2, 10, false));
    EXPECT_TRUE(m.full());
    EXPECT_FALSE(m.allocate(3, 10, false));
}

TEST(MshrFile, DrainReadyReturnsOnlyElapsed)
{
    MshrFile m(4);
    m.allocate(1, 10, false);
    m.allocate(2, 20, true);
    m.allocate(3, 30, false);

    const auto ready = m.drainReady(20);
    ASSERT_EQ(ready.size(), 2u);
    EXPECT_EQ(ready[0].block, 1u);
    EXPECT_EQ(ready[1].block, 2u);
    EXPECT_TRUE(ready[1].isPrefetch);
    EXPECT_EQ(m.size(), 1u);
    EXPECT_TRUE(m.contains(3));
}

TEST(MshrFile, DrainReadySortsByCompletion)
{
    MshrFile m(4);
    m.allocate(5, 30, false);
    m.allocate(6, 10, false);
    m.allocate(7, 20, false);
    const auto ready = m.drainReady(100);
    ASSERT_EQ(ready.size(), 3u);
    EXPECT_EQ(ready[0].block, 6u);
    EXPECT_EQ(ready[1].block, 7u);
    EXPECT_EQ(ready[2].block, 5u);
}

TEST(MshrFile, NoteDemandMarksEntryAndReturnsReadyTime)
{
    MshrFile m(2);
    m.allocate(9, 55, true);
    EXPECT_EQ(m.noteDemand(9), 55u);
    const auto ready = m.drainReady(60);
    ASSERT_EQ(ready.size(), 1u);
    EXPECT_TRUE(ready[0].demandHit);
}

TEST(MshrFileDeath, NoteDemandOnAbsentBlockPanics)
{
    MshrFile m(2);
    EXPECT_DEATH(m.noteDemand(1), "no outstanding fill");
}

TEST(MshrFile, ClearEmpties)
{
    MshrFile m(2);
    m.allocate(1, 1, false);
    m.clear();
    EXPECT_EQ(m.size(), 0u);
    EXPECT_FALSE(m.full());
}

} // namespace
} // namespace pifetch
