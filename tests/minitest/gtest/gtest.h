/**
 * @file
 * Shim so `#include <gtest/gtest.h>` resolves to the vendored
 * minitest framework when the build selects the offline fallback
 * (see cmake/TestFramework.cmake).
 */

#pragma once

#include "../../minitest.hh"
