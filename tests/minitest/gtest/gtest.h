/**
 * @file
 * Shim so `#include <gtest/gtest.h>` resolves to the vendored
 * minitest framework when the build selects the offline fallback
 * (see cmake/TestFramework.cmake).
 */

#ifndef PIFETCH_TESTS_MINITEST_GTEST_SHIM_H
#define PIFETCH_TESTS_MINITEST_GTEST_SHIM_H

#include "../../minitest.hh"

#endif // PIFETCH_TESTS_MINITEST_GTEST_SHIM_H
