/**
 * @file
 * Trace file I/O tests.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "common/rng.hh"
#include "trace/trace_io.hh"

namespace pifetch {
namespace {

std::vector<RetiredInstr>
sampleTrace()
{
    std::vector<RetiredInstr> t;
    RetiredInstr a;
    a.pc = 0x1000;
    a.kind = InstrKind::Plain;
    t.push_back(a);

    RetiredInstr b;
    b.pc = 0x1004;
    b.kind = InstrKind::CondBranch;
    b.target = 0x2000;
    b.taken = true;
    t.push_back(b);

    RetiredInstr c;
    c.pc = 0x2000;
    c.kind = InstrKind::Return;
    c.target = 0x1008;
    c.taken = true;
    c.trapLevel = 1;
    t.push_back(c);
    return t;
}

class TraceIoTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "pifetch_trace_test.bin";
    }

    void TearDown() override { std::remove(path_.c_str()); }

    std::string path_;
};

TEST_F(TraceIoTest, RoundTripPreservesAllFields)
{
    const auto original = sampleTrace();
    ASSERT_TRUE(writeTrace(path_, original));

    std::vector<RetiredInstr> replay;
    ASSERT_TRUE(readTrace(path_, replay));
    ASSERT_EQ(replay.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(replay[i].pc, original[i].pc);
        EXPECT_EQ(replay[i].target, original[i].target);
        EXPECT_EQ(replay[i].kind, original[i].kind);
        EXPECT_EQ(replay[i].taken, original[i].taken);
        EXPECT_EQ(replay[i].trapLevel, original[i].trapLevel);
    }
}

TEST_F(TraceIoTest, EmptyTraceRoundTrips)
{
    ASSERT_TRUE(writeTrace(path_, {}));
    std::vector<RetiredInstr> replay = sampleTrace();
    ASSERT_TRUE(readTrace(path_, replay));
    EXPECT_TRUE(replay.empty());
}

TEST_F(TraceIoTest, MissingFileFails)
{
    std::vector<RetiredInstr> replay;
    EXPECT_FALSE(readTrace(path_ + ".nope", replay));
}

TEST_F(TraceIoTest, BadMagicRejected)
{
    std::FILE *f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[32] = "this is not a pifetch trace";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);

    std::vector<RetiredInstr> replay;
    EXPECT_FALSE(readTrace(path_, replay));
}

TEST_F(TraceIoTest, TruncatedFileRejected)
{
    ASSERT_TRUE(writeTrace(path_, sampleTrace()));
    // Truncate mid-record.
    std::FILE *f = std::fopen(path_.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(0, truncate(path_.c_str(), size - 10));

    std::vector<RetiredInstr> replay;
    EXPECT_FALSE(readTrace(path_, replay));
}

TEST_F(TraceIoTest, LargeTraceRoundTrips)
{
    std::vector<RetiredInstr> big;
    big.reserve(100000);
    for (Addr i = 0; i < 100000; ++i) {
        RetiredInstr r;
        r.pc = i * 4;
        r.kind = (i % 7 == 0) ? InstrKind::Call : InstrKind::Plain;
        r.target = (i % 7 == 0) ? i * 8 : invalidAddr;
        big.push_back(r);
    }
    ASSERT_TRUE(writeTrace(path_, big));
    std::vector<RetiredInstr> replay;
    ASSERT_TRUE(readTrace(path_, replay));
    ASSERT_EQ(replay.size(), big.size());
    EXPECT_EQ(replay[99999].pc, big[99999].pc);
}

TEST_F(TraceIoTest, CorruptHeaderCountRejectedWithoutAllocating)
{
    // A valid small file whose header then claims ~768 billion
    // records: reserve()ing that many would demand ~17 TB before the
    // first record read could fail. The reader must bounds-check the
    // count against the file size and reject up front.
    ASSERT_TRUE(writeTrace(path_, sampleTrace()));
    std::FILE *f = std::fopen(path_.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    const std::uint64_t bogus = 0xb2d05e00000000ull;
    ASSERT_EQ(0, std::fseek(f, 8, SEEK_SET));  // magic+version = 8 B
    ASSERT_EQ(1u, std::fwrite(&bogus, sizeof(bogus), 1, f));
    ASSERT_EQ(0, std::fclose(f));

    std::vector<RetiredInstr> replay;
    EXPECT_FALSE(readTrace(path_, replay));
    EXPECT_TRUE(replay.empty());
}

TEST_F(TraceIoTest, CountLargerThanPayloadRejected)
{
    // Off-by-one flavour: header promises one more record than the
    // payload holds.
    ASSERT_TRUE(writeTrace(path_, sampleTrace()));
    std::FILE *f = std::fopen(path_.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    const std::uint64_t bogus = sampleTrace().size() + 1;
    ASSERT_EQ(0, std::fseek(f, 8, SEEK_SET));
    ASSERT_EQ(1u, std::fwrite(&bogus, sizeof(bogus), 1, f));
    ASSERT_EQ(0, std::fclose(f));

    std::vector<RetiredInstr> replay;
    EXPECT_FALSE(readTrace(path_, replay));
    EXPECT_TRUE(replay.empty());
}

TEST_F(TraceIoTest, TrailingBytesBeyondCountAreIgnored)
{
    ASSERT_TRUE(writeTrace(path_, sampleTrace()));
    std::FILE *f = std::fopen(path_.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char extra[7] = "extra!";
    ASSERT_EQ(sizeof(extra),
              std::fwrite(extra, 1, sizeof(extra), f));
    ASSERT_EQ(0, std::fclose(f));

    std::vector<RetiredInstr> replay;
    ASSERT_TRUE(readTrace(path_, replay));
    EXPECT_EQ(replay.size(), sampleTrace().size());
}

TEST_F(TraceIoTest, HeaderOnlyFileWithZeroCountSucceeds)
{
    ASSERT_TRUE(writeTrace(path_, {}));
    std::vector<RetiredInstr> replay;
    ASSERT_TRUE(readTrace(path_, replay));
    EXPECT_TRUE(replay.empty());

    // ...but a bare header claiming records is rejected.
    std::FILE *f = std::fopen(path_.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    const std::uint64_t bogus = 1;
    ASSERT_EQ(0, std::fseek(f, 8, SEEK_SET));
    ASSERT_EQ(1u, std::fwrite(&bogus, sizeof(bogus), 1, f));
    ASSERT_EQ(0, std::fclose(f));
    EXPECT_FALSE(readTrace(path_, replay));
}

TEST_F(TraceIoTest, ChunkBoundaryTraceRoundTripsAllFields)
{
    // Sizes straddling the 32K-record chunk: below, exactly one
    // chunk, one over, and a multi-chunk trace with a partial tail.
    const std::size_t sizes[] = {32767, 32768, 32769, 70001};
    for (const std::size_t count : sizes) {
        std::vector<RetiredInstr> trace;
        trace.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
            RetiredInstr r;
            r.pc = 0x40000000 + i * 4;
            r.kind = static_cast<InstrKind>(i % 5);
            r.target = (i % 3 == 0) ? 0x50000000 + i : invalidAddr;
            r.taken = i % 2 == 0;
            r.trapLevel = static_cast<TrapLevel>(i % 2);
            trace.push_back(r);
        }
        ASSERT_TRUE(writeTrace(path_, trace));
        std::vector<RetiredInstr> replay;
        ASSERT_TRUE(readTrace(path_, replay));
        ASSERT_EQ(replay.size(), trace.size()) << "count " << count;
        for (std::size_t i = 0; i < count; ++i) {
            ASSERT_EQ(replay[i].pc, trace[i].pc);
            ASSERT_EQ(replay[i].target, trace[i].target);
            ASSERT_EQ(replay[i].kind, trace[i].kind);
            ASSERT_EQ(replay[i].taken, trace[i].taken);
            ASSERT_EQ(replay[i].trapLevel, trace[i].trapLevel);
        }
    }
}

TEST_F(TraceIoTest, WriteToUnwritablePathFails)
{
    EXPECT_FALSE(writeTrace("/nonexistent-dir/trace.bin",
                            sampleTrace()));
}

TEST_F(TraceIoTest, FuzzedCorruptionNeverCrashesOrLeaksState)
{
    // Seeded corruption fuzz over the three failure families the
    // reader must survive: truncation anywhere (including
    // mid-header), random bit flips, and short header-only stubs.
    // The contract under attack: readTrace never crashes, never
    // over-allocates, and on failure leaves `records` empty (no
    // partial-state leak). A payload-only bit flip may still parse —
    // the format carries no checksum — but then the record count must
    // match whatever the (possibly flipped) header promised against
    // the actual payload.
    std::vector<RetiredInstr> original;
    original.reserve(1'000);
    for (Addr i = 0; i < 1'000; ++i) {
        RetiredInstr r;
        r.pc = 0x40000 + i * 4;
        r.kind = static_cast<InstrKind>(i % 5);
        r.target = (i % 3 == 0) ? 0x50000 + i : invalidAddr;
        r.taken = i % 2 == 0;
        r.trapLevel = static_cast<TrapLevel>(i % 2);
        original.push_back(r);
    }
    ASSERT_TRUE(writeTrace(path_, original));

    std::string pristine;
    {
        std::ifstream is(path_, std::ios::binary);
        std::ostringstream buf;
        buf << is.rdbuf();
        ASSERT_TRUE(is);
        pristine = buf.str();
    }
    constexpr std::size_t headerBytes = 16;  // magic+version+count
    ASSERT_EQ(pristine.size(),
              headerBytes + original.size() * 24);

    Rng rng(0x7ace10);
    const std::string mutated_path = path_ + ".fuzz";
    for (int iter = 0; iter < 400; ++iter) {
        std::string mutated = pristine;
        switch (rng.below(3)) {
          case 0:  // truncate anywhere, including inside the header
            mutated.resize(rng.below(mutated.size() + 1));
            break;
          case 1: {  // flip 1..8 random bits anywhere
            const std::uint64_t flips = rng.range(1, 8);
            for (std::uint64_t f = 0; f < flips; ++f) {
                const std::size_t byte = rng.below(mutated.size());
                mutated[byte] = static_cast<char>(
                    mutated[byte] ^ (1u << rng.below(8)));
            }
            break;
          }
          default:  // header-only stub, possibly partial
            mutated.resize(rng.below(headerBytes + 1));
            break;
        }
        {
            std::ofstream os(mutated_path, std::ios::binary);
            os << mutated;
            ASSERT_TRUE(os.good());
        }

        // Pre-load the output vector so a failure that merely forgot
        // to clear it is caught as a leak.
        std::vector<RetiredInstr> replay = sampleTrace();
        const bool ok = readTrace(mutated_path, replay);
        if (!ok) {
            EXPECT_TRUE(replay.empty())
                << "iteration " << iter
                << ": failed read leaked partial state";
        } else {
            // Success is legitimate only when the file still starts
            // with an intact header whose count fits the payload.
            ASSERT_GE(mutated.size(), headerBytes);
            std::uint64_t count = 0;
            std::memcpy(&count, mutated.data() + 8, sizeof(count));
            EXPECT_EQ(replay.size(), count) << "iteration " << iter;
            EXPECT_LE(headerBytes + count * 24, mutated.size())
                << "iteration " << iter;
        }
    }
    std::remove(mutated_path.c_str());
}

} // namespace
} // namespace pifetch
