/**
 * @file
 * Trace file I/O tests.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <unistd.h>

#include "trace/trace_io.hh"

namespace pifetch {
namespace {

std::vector<RetiredInstr>
sampleTrace()
{
    std::vector<RetiredInstr> t;
    RetiredInstr a;
    a.pc = 0x1000;
    a.kind = InstrKind::Plain;
    t.push_back(a);

    RetiredInstr b;
    b.pc = 0x1004;
    b.kind = InstrKind::CondBranch;
    b.target = 0x2000;
    b.taken = true;
    t.push_back(b);

    RetiredInstr c;
    c.pc = 0x2000;
    c.kind = InstrKind::Return;
    c.target = 0x1008;
    c.taken = true;
    c.trapLevel = 1;
    t.push_back(c);
    return t;
}

class TraceIoTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "pifetch_trace_test.bin";
    }

    void TearDown() override { std::remove(path_.c_str()); }

    std::string path_;
};

TEST_F(TraceIoTest, RoundTripPreservesAllFields)
{
    const auto original = sampleTrace();
    ASSERT_TRUE(writeTrace(path_, original));

    std::vector<RetiredInstr> replay;
    ASSERT_TRUE(readTrace(path_, replay));
    ASSERT_EQ(replay.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(replay[i].pc, original[i].pc);
        EXPECT_EQ(replay[i].target, original[i].target);
        EXPECT_EQ(replay[i].kind, original[i].kind);
        EXPECT_EQ(replay[i].taken, original[i].taken);
        EXPECT_EQ(replay[i].trapLevel, original[i].trapLevel);
    }
}

TEST_F(TraceIoTest, EmptyTraceRoundTrips)
{
    ASSERT_TRUE(writeTrace(path_, {}));
    std::vector<RetiredInstr> replay = sampleTrace();
    ASSERT_TRUE(readTrace(path_, replay));
    EXPECT_TRUE(replay.empty());
}

TEST_F(TraceIoTest, MissingFileFails)
{
    std::vector<RetiredInstr> replay;
    EXPECT_FALSE(readTrace(path_ + ".nope", replay));
}

TEST_F(TraceIoTest, BadMagicRejected)
{
    std::FILE *f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[32] = "this is not a pifetch trace";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);

    std::vector<RetiredInstr> replay;
    EXPECT_FALSE(readTrace(path_, replay));
}

TEST_F(TraceIoTest, TruncatedFileRejected)
{
    ASSERT_TRUE(writeTrace(path_, sampleTrace()));
    // Truncate mid-record.
    std::FILE *f = std::fopen(path_.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(0, truncate(path_.c_str(), size - 10));

    std::vector<RetiredInstr> replay;
    EXPECT_FALSE(readTrace(path_, replay));
}

TEST_F(TraceIoTest, LargeTraceRoundTrips)
{
    std::vector<RetiredInstr> big;
    big.reserve(100000);
    for (Addr i = 0; i < 100000; ++i) {
        RetiredInstr r;
        r.pc = i * 4;
        r.kind = (i % 7 == 0) ? InstrKind::Call : InstrKind::Plain;
        r.target = (i % 7 == 0) ? i * 8 : invalidAddr;
        big.push_back(r);
    }
    ASSERT_TRUE(writeTrace(path_, big));
    std::vector<RetiredInstr> replay;
    ASSERT_TRUE(readTrace(path_, replay));
    ASSERT_EQ(replay.size(), big.size());
    EXPECT_EQ(replay[99999].pc, big[99999].pc);
}

} // namespace
} // namespace pifetch
