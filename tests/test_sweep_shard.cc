/**
 * @file
 * Sharded-sweep tests: partition determinism, manifest round-trips,
 * the crash/resume contract (a SIGKILLed shard resumes to a merged
 * tree byte-identical to an in-process sweep), and journal-corruption
 * handling.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <functional>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <sys/wait.h>
#include <unistd.h>

#include "sweep/manifest.hh"
#include "sweep/runner.hh"

namespace pifetch {
namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    return buf.str();
}

void
spit(const std::string &path, const std::string &bytes)
{
    std::ofstream os(path, std::ios::binary);
    os << bytes;
    ASSERT_TRUE(os.good());
}

/** A 3x2x2 manifest over synthetic axes (no experiment needed). */
SweepManifest
gridManifest(unsigned shards)
{
    SweepManifest m;
    m.experiment = "fig10-coverage";
    m.axes = {{"pif.blocksBefore", {"1", "2", "3"}},
              {"pif.blocksAfter", {"2", "4"}},
              {"l1i.assoc", {"2", "4"}}};
    m.shards = shards;
    return m;
}

TEST(SweepPartition, ShardsTileTheGridExactlyOnce)
{
    const SweepManifest m = gridManifest(5);
    ASSERT_EQ(sweepPointCount(m), 12u);

    std::set<std::uint64_t> seen;
    for (unsigned k = 0; k < m.shards; ++k) {
        for (const std::uint64_t p : sweepShardPoints(m, k)) {
            EXPECT_EQ(sweepPointShard(p, m.shards), k);
            EXPECT_TRUE(seen.insert(p).second)
                << "point " << p << " owned by two shards";
        }
    }
    // Union over all shards is the full grid — nothing lost, nothing
    // duplicated, independent of the shard count.
    EXPECT_EQ(seen.size(), 12u);
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), 11u);

    // One shard gets everything when shards == 1.
    SweepManifest one = gridManifest(1);
    EXPECT_EQ(sweepShardPoints(one, 0).size(), 12u);
}

TEST(SweepPartition, PointParamsEnumerateFirstAxisOutermost)
{
    const SweepManifest m = gridManifest(1);
    // Manual cartesian enumeration in the CLI's historical order.
    std::uint64_t p = 0;
    for (const std::string &a : m.axes[0].values) {
        for (const std::string &b : m.axes[1].values) {
            for (const std::string &c : m.axes[2].values) {
                const auto params = sweepPointParams(m, p);
                ASSERT_EQ(params.size(), 3u);
                EXPECT_EQ(params[0],
                          std::make_pair(std::string("pif.blocksBefore"),
                                         a)) << "point " << p;
                EXPECT_EQ(params[1],
                          std::make_pair(std::string("pif.blocksAfter"),
                                         b)) << "point " << p;
                EXPECT_EQ(params[2],
                          std::make_pair(std::string("l1i.assoc"), c))
                    << "point " << p;
                ++p;
            }
        }
    }
    EXPECT_EQ(p, sweepPointCount(m));
}

TEST(SweepManifestIo, CanonicalJsonRoundTrips)
{
    SweepManifest m = gridManifest(3);
    m.workloads = {{"db2", false}, {"specs/web.json", true}};
    m.overrides = {{"seed", "7"}, {"pif.numSabs", "12"}};
    m.warmup = 1000;
    m.measure = 5000;

    const std::string bytes = manifestJson(m);
    const auto doc = parseJson(bytes);
    ASSERT_TRUE(doc.has_value());
    std::string err;
    const auto back = manifestFromResult(*doc, &err);
    ASSERT_TRUE(back.has_value()) << err;
    EXPECT_EQ(manifestJson(*back), bytes);
    EXPECT_EQ(back->experiment, m.experiment);
    EXPECT_EQ(back->shards, 3u);
    ASSERT_EQ(back->axes.size(), 3u);
    EXPECT_EQ(back->axes[0].values, m.axes[0].values);
    ASSERT_EQ(back->workloads.size(), 2u);
    EXPECT_FALSE(back->workloads[0].isFile);
    EXPECT_TRUE(back->workloads[1].isFile);
    EXPECT_EQ(back->overrides, m.overrides);
    EXPECT_EQ(back->warmup, m.warmup);
    EXPECT_EQ(back->measure, m.measure);
}

TEST(SweepManifestIo, MalformedDocumentsAreRejected)
{
    const SweepManifest good = gridManifest(2);
    const auto mutate = [&](const std::function<void(ResultValue &)> &f) {
        ResultValue doc = manifestToResult(good);
        f(doc);
        std::string err;
        const auto parsed = manifestFromResult(doc, &err);
        EXPECT_FALSE(parsed.has_value());
        EXPECT_FALSE(err.empty());
        return err;
    };

    mutate([](ResultValue &d) { d.set("schema", "somebody-elses"); });
    mutate([](ResultValue &d) { d.set("shards", 0u); });
    // Advertised point count disagreeing with the axes.
    mutate([](ResultValue &d) { d.set("points", 999u); });
    mutate([](ResultValue &d) { d.set("axes", ResultValue::array()); });
    mutate([](ResultValue &d) { d.set("experiment", ""); });
}

// ----------------------------------------- crash / resume / identity

class SweepShardTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = ::testing::TempDir() + "pifetch_sweep_shard_" +
               std::to_string(::getpid());
        std::filesystem::remove_all(dir_);

        // A real but tiny sweep: 4 points over PIF lookahead/lookback
        // on one workload, 2 shards (shard 0 owns points 0 and 2).
        m_.experiment = "fig10-coverage";
        m_.axes = {{"pif.blocksBefore", {"1", "2"}},
                   {"pif.blocksAfter", {"2", "4"}}};
        m_.shards = 2;
        m_.workloads = {{"db2", false}};
        m_.warmup = 400;
        m_.measure = 1500;
    }

    void
    TearDown() override
    {
        std::filesystem::remove_all(dir_);
    }

    /** The sweep document an in-process `pifetch sweep` would emit. */
    std::string
    inProcessSweepJson()
    {
        const ExperimentSpec *spec = findExperiment(m_.experiment);
        EXPECT_NE(spec, nullptr);
        std::string err;
        const auto base = sweepBaseOptions(*spec, m_, &err);
        EXPECT_TRUE(base.has_value()) << err;
        std::vector<ResultValue> docs;
        for (std::uint64_t p = 0; p < sweepPointCount(m_); ++p)
            docs.push_back(runSweepPoint(*spec, *base, m_, p));
        return toJson(assembleSweepDoc(m_, std::move(docs)), 2);
    }

    std::string dir_;
    SweepManifest m_;
};

TEST_F(SweepShardTest, KilledShardResumesToByteIdenticalMergedTree)
{
    std::string err;
    ASSERT_TRUE(initSweepDir(dir_, m_, &err)) << err;
    const std::string expected = inProcessSweepJson();

    // Run shard 0 in a child that SIGKILLs itself right after
    // journaling its first completed point — the crash contract's
    // worst case (death immediately after the journal fflush).
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        ::setenv("PIFETCH_SWEEP_KILL_AFTER", "0:1", 1);
        std::string child_err;
        runSweepShard(dir_, m_, 0, false, &child_err);
        ::_exit(2);  // unreachable when the kill hook fires
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status))
        << "shard child exited instead of dying to the kill hook";
    ASSERT_EQ(WTERMSIG(status), SIGKILL);

    // Exactly one point journaled; its point file bytes check out.
    const auto done = journaledCompletePoints(dir_, m_, 0);
    ASSERT_EQ(done, (std::vector<std::uint64_t>{0}));
    const std::string journal_after_crash =
        slurp(sweepJournalPath(dir_, 0));
    const std::string point0_after_crash =
        slurp(sweepPointPath(dir_, m_, 0));
    ASSERT_FALSE(point0_after_crash.empty());

    // Resume shard 0: the journaled point is skipped (the journal is
    // appended to, not rewritten), the missing point re-runs.
    ASSERT_TRUE(runSweepShard(dir_, m_, 0, true, &err)) << err;
    const std::string journal_after_resume =
        slurp(sweepJournalPath(dir_, 0));
    EXPECT_EQ(journal_after_resume.substr(0, journal_after_crash.size()),
              journal_after_crash);
    EXPECT_GT(journal_after_resume.size(), journal_after_crash.size());
    EXPECT_EQ(slurp(sweepPointPath(dir_, m_, 0)), point0_after_crash);
    EXPECT_EQ(journaledCompletePoints(dir_, m_, 0),
              (std::vector<std::uint64_t>{0, 2}));

    // Finish shard 1 and merge: byte-identical to the in-process sweep.
    ASSERT_TRUE(runSweepShard(dir_, m_, 1, false, &err)) << err;
    const auto merged = mergeShardedSweep(dir_, m_, &err);
    ASSERT_TRUE(merged.has_value()) << err;
    EXPECT_EQ(toJson(*merged, 2), expected);
}

TEST_F(SweepShardTest, CorruptJournalAndPointFilesAreReRun)
{
    std::string err;
    ASSERT_TRUE(initSweepDir(dir_, m_, &err)) << err;
    ASSERT_TRUE(runSweepShard(dir_, m_, 0, false, &err)) << err;
    ASSERT_TRUE(runSweepShard(dir_, m_, 1, false, &err)) << err;
    const auto merged = mergeShardedSweep(dir_, m_, &err);
    ASSERT_TRUE(merged.has_value()) << err;
    const std::string expected = toJson(*merged, 2);
    const std::string journal = slurp(sweepJournalPath(dir_, 0));
    ASSERT_EQ(journaledCompletePoints(dir_, m_, 0),
              (std::vector<std::uint64_t>{0, 2}));

    // Garbage line, a torn (truncated) line, and a line claiming a
    // point shard 0 does not own: all ignored, valid entries kept.
    spit(sweepJournalPath(dir_, 0),
         journal + "not json at all\n" + "{\"point\":1,\"digest\":\"" +
             std::string(16, '0') + "\"}\n" +
             journal.substr(0, journal.size() / 2));
    EXPECT_EQ(journaledCompletePoints(dir_, m_, 0),
              (std::vector<std::uint64_t>{0, 2}));

    // A journal line whose digest no longer matches the point file's
    // bytes invalidates that point (and only that point).
    std::string tampered = journal;
    const std::size_t digest_at = tampered.find("\"digest\":\"");
    ASSERT_NE(digest_at, std::string::npos);
    const std::size_t hex0 = digest_at + 10;
    tampered[hex0] = tampered[hex0] == 'a' ? 'b' : 'a';
    spit(sweepJournalPath(dir_, 0), tampered);
    EXPECT_EQ(journaledCompletePoints(dir_, m_, 0),
              (std::vector<std::uint64_t>{2}));

    // Same when the journal is pristine but the point file's bytes
    // were corrupted after the fact.
    spit(sweepJournalPath(dir_, 0), journal);
    const std::string point0_path = sweepPointPath(dir_, m_, 0);
    const std::string point0 = slurp(point0_path);
    spit(point0_path, point0 + "trailing garbage");
    EXPECT_EQ(journaledCompletePoints(dir_, m_, 0),
              (std::vector<std::uint64_t>{2}));

    // A corrupt point file also fails the merge with an actionable
    // error naming the point, rather than merging garbage.
    spit(point0_path, "{broken");
    err.clear();
    EXPECT_FALSE(mergeShardedSweep(dir_, m_, &err).has_value());
    EXPECT_NE(err.find("point-0"), std::string::npos) << err;
    EXPECT_NE(err.find("--resume"), std::string::npos) << err;

    // Resume heals it: the invalid point re-runs, and the merged tree
    // is byte-identical to the pre-corruption document.
    ASSERT_TRUE(runSweepShard(dir_, m_, 0, true, &err)) << err;
    EXPECT_EQ(journaledCompletePoints(dir_, m_, 0),
              (std::vector<std::uint64_t>{0, 2}));
    const auto healed = mergeShardedSweep(dir_, m_, &err);
    ASSERT_TRUE(healed.has_value()) << err;
    EXPECT_EQ(toJson(*healed, 2), expected);
}

TEST_F(SweepShardTest, MissingPointFileFailsMergeUntilResumed)
{
    std::string err;
    ASSERT_TRUE(initSweepDir(dir_, m_, &err)) << err;
    ASSERT_TRUE(runSweepShard(dir_, m_, 0, false, &err)) << err;
    ASSERT_TRUE(runSweepShard(dir_, m_, 1, false, &err)) << err;
    const auto merged = mergeShardedSweep(dir_, m_, &err);
    ASSERT_TRUE(merged.has_value()) << err;

    ASSERT_EQ(std::remove(sweepPointPath(dir_, m_, 3).c_str()), 0);
    err.clear();
    EXPECT_FALSE(mergeShardedSweep(dir_, m_, &err).has_value());
    EXPECT_NE(err.find("point 3"), std::string::npos) << err;

    ASSERT_TRUE(runSweepShard(dir_, m_, 1, true, &err)) << err;
    const auto healed = mergeShardedSweep(dir_, m_, &err);
    ASSERT_TRUE(healed.has_value()) << err;
    EXPECT_EQ(toJson(*healed, 2), toJson(*merged, 2));
}

} // namespace
} // namespace pifetch
