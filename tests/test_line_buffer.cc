/**
 * @file
 * Line buffer tests.
 */

#include <gtest/gtest.h>

#include "cache/line_buffer.hh"

namespace pifetch {
namespace {

TEST(LineBuffer, InsertThenContains)
{
    LineBuffer lb(2);
    lb.insert(7);
    EXPECT_TRUE(lb.contains(7));
    EXPECT_FALSE(lb.contains(8));
}

TEST(LineBuffer, FifoDisplacement)
{
    LineBuffer lb(2);
    lb.insert(1);
    lb.insert(2);
    lb.insert(3);  // displaces 1
    EXPECT_FALSE(lb.contains(1));
    EXPECT_TRUE(lb.contains(2));
    EXPECT_TRUE(lb.contains(3));
}

TEST(LineBuffer, DuplicateInsertIsNoOp)
{
    LineBuffer lb(2);
    lb.insert(1);
    lb.insert(1);
    lb.insert(2);
    // Block 1 must still be resident: the duplicate didn't consume a slot.
    EXPECT_TRUE(lb.contains(1));
    EXPECT_TRUE(lb.contains(2));
}

TEST(LineBuffer, RemoveAndClear)
{
    LineBuffer lb(4);
    lb.insert(1);
    lb.insert(2);
    lb.remove(1);
    EXPECT_FALSE(lb.contains(1));
    EXPECT_TRUE(lb.contains(2));
    lb.clear();
    EXPECT_FALSE(lb.contains(2));
}

} // namespace
} // namespace pifetch
