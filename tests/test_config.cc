/**
 * @file
 * Configuration tests (Table I defaults).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/config.hh"

namespace pifetch {
namespace {

TEST(CacheConfig, TableIGeometry)
{
    const SystemConfig cfg;
    // 64KB, 2-way, 64B blocks -> 512 sets.
    EXPECT_EQ(cfg.l1i.sets(), 512u);
    EXPECT_EQ(cfg.l1i.assoc, 2u);
    EXPECT_EQ(cfg.l1i.hitLatency, 2u);
}

TEST(PifConfig, PaperDefaults)
{
    const PifConfig pif;
    EXPECT_EQ(pif.blocksBefore, 2u);
    EXPECT_EQ(pif.blocksAfter, 5u);
    EXPECT_EQ(pif.regionBlocks(), 8u);
    EXPECT_EQ(pif.temporalEntries, 4u);
    EXPECT_EQ(pif.historyRegions, 32u * 1024);
    EXPECT_EQ(pif.numSabs, 4u);
    EXPECT_EQ(pif.sabWindowRegions, 7u);
    EXPECT_TRUE(pif.separateTrapLevels);
}

TEST(CoreConfig, TableIWidths)
{
    const CoreConfig core;
    EXPECT_EQ(core.dispatchWidth, 3u);
    EXPECT_EQ(core.retireWidth, 3u);
    EXPECT_EQ(core.robEntries, 96u);
    EXPECT_EQ(core.fetchQueueEntries, 24u);
}

TEST(MemoryConfig, TableILatencies)
{
    const MemoryConfig mem;
    EXPECT_EQ(mem.l2HitLatency, 15u);
    EXPECT_EQ(mem.memLatency, 90u);  // 45 ns at 2 GHz
}

TEST(BranchConfig, TableIHybridSizing)
{
    const BranchConfig br;
    EXPECT_EQ(br.gshareEntries, 16u * 1024);
    EXPECT_EQ(br.bimodalEntries, 16u * 1024);
}

TEST(PrintSystemConfig, MentionsKeyStructures)
{
    std::ostringstream os;
    printSystemConfig(SystemConfig{}, os);
    const std::string s = os.str();
    EXPECT_NE(s.find("l1i"), std::string::npos);
    EXPECT_NE(s.find("history buffer"), std::string::npos);
    EXPECT_NE(s.find("SABs"), std::string::npos);
    EXPECT_NE(s.find("gshare"), std::string::npos);
}

TEST(Types, BlockArithmetic)
{
    EXPECT_EQ(blockAddr(0), 0u);
    EXPECT_EQ(blockAddr(63), 0u);
    EXPECT_EQ(blockAddr(64), 1u);
    EXPECT_EQ(blockBase(3), 192u);
    EXPECT_TRUE(sameBlock(0, 63));
    EXPECT_FALSE(sameBlock(63, 64));
    EXPECT_EQ(instrsPerBlock, 16u);
}

} // namespace
} // namespace pifetch
