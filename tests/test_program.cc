/**
 * @file
 * Program structure and generator tests.
 */

#include <gtest/gtest.h>

#include <set>

#include "test_util.hh"
#include "trace/generator.hh"
#include "trace/server_suite.hh"

namespace pifetch {
namespace {

WorkloadParams
smallParams()
{
    WorkloadParams p;
    p.name = "test";
    p.seed = 99;
    p.appFunctions = 200;
    p.libFunctions = 40;
    p.handlers = 4;
    p.callLayers = 5;
    p.transactions = 4;
    return p;
}

TEST(Program, TinyProgramValidates)
{
    const Program prog = testutil::tinyProgram();
    EXPECT_EQ(prog.functions.size(), 4u);
    EXPECT_GT(prog.footprintBlocks(), 0u);
}

TEST(ProgramDeath, RejectsEmptyProgram)
{
    Program prog;
    EXPECT_DEATH(prog.validate(), "no functions");
}

TEST(ProgramDeath, RejectsCallInLastBlock)
{
    Program prog = testutil::tinyProgram();
    // Corrupt the leaf: a call in its only (last) block.
    prog.functions[2].blocks[0].term = BlockTerm::Call;
    prog.functions[2].blocks[0].callee = 1;
    EXPECT_DEATH(prog.validate(), "fall through");
}

TEST(ProgramDeath, RejectsForwardLoopBranch)
{
    Program prog = testutil::tinyProgram();
    prog.functions[1].blocks[1].term = BlockTerm::LoopBranch;
    prog.functions[1].blocks[1].targetBlock = 3;  // forward: illegal
    EXPECT_DEATH(prog.validate(), "backward");
}

TEST(Generator, BuildsValidProgram)
{
    const Program prog = WorkloadGenerator::build(smallParams());
    // validate() ran inside build(); basic shape checks:
    EXPECT_EQ(prog.functions.size(), 1u + 200 + 40 + 4);
    EXPECT_EQ(prog.transactionRoots.size(), 4u);
    EXPECT_EQ(prog.handlers.size(), 4u);
    EXPECT_EQ(prog.dispatcher, 0u);
}

TEST(Generator, DeterministicForSeed)
{
    const Program a = WorkloadGenerator::build(smallParams());
    const Program b = WorkloadGenerator::build(smallParams());
    ASSERT_EQ(a.functions.size(), b.functions.size());
    EXPECT_EQ(a.codeEnd, b.codeEnd);
    for (std::size_t f = 0; f < a.functions.size(); ++f) {
        ASSERT_EQ(a.functions[f].blocks.size(),
                  b.functions[f].blocks.size());
        EXPECT_EQ(a.functions[f].entry, b.functions[f].entry);
        for (std::size_t i = 0; i < a.functions[f].blocks.size(); ++i) {
            EXPECT_EQ(a.functions[f].blocks[i].callee,
                      b.functions[f].blocks[i].callee);
            EXPECT_EQ(a.functions[f].blocks[i].term,
                      b.functions[f].blocks[i].term);
        }
    }
}

TEST(Generator, DifferentSeedsDiffer)
{
    WorkloadParams p1 = smallParams();
    WorkloadParams p2 = smallParams();
    p2.seed = 1234;
    const Program a = WorkloadGenerator::build(p1);
    const Program b = WorkloadGenerator::build(p2);
    EXPECT_NE(a.codeEnd, b.codeEnd);
}

TEST(Generator, FunctionsAreBlockAlignedAndOrdered)
{
    const Program prog = WorkloadGenerator::build(smallParams());
    Addr prev_end = 0;
    for (const Function &fn : prog.functions) {
        EXPECT_EQ(fn.entry % blockBytes, 0u);
        EXPECT_GE(fn.entry, prev_end);
        prev_end = fn.end();
    }
}

TEST(Generator, LayeredCallGraphIsAcyclicOverAppFunctions)
{
    const WorkloadParams p = smallParams();
    const Program prog = WorkloadGenerator::build(p);
    const std::uint32_t app_first = 1;
    const std::uint32_t lib_first = app_first + p.appFunctions;
    for (std::uint32_t f = app_first; f < lib_first; ++f) {
        const unsigned layer = (f - app_first) % p.callLayers;
        for (const BasicBlock &b : prog.functions[f].blocks) {
            if (b.term != BlockTerm::Call)
                continue;
            if (b.callee >= lib_first)
                continue;  // library helper: checked separately
            const unsigned callee_layer =
                (b.callee - app_first) % p.callLayers;
            EXPECT_EQ(callee_layer, layer + 1)
                << "fn " << f << " layer " << layer << " calls layer "
                << callee_layer;
        }
    }
}

TEST(Generator, LibraryCallsFormAscendingDag)
{
    const WorkloadParams p = smallParams();
    const Program prog = WorkloadGenerator::build(p);
    const std::uint32_t lib_first = 1 + p.appFunctions;
    const std::uint32_t handler_first = lib_first + p.libFunctions;
    for (std::uint32_t f = lib_first; f < handler_first; ++f) {
        for (const BasicBlock &b : prog.functions[f].blocks) {
            if (b.term != BlockTerm::Call)
                continue;
            EXPECT_GT(b.callee, f);
            EXPECT_LT(b.callee, handler_first);
        }
    }
}

TEST(Generator, HandlersCallOnlyLibrary)
{
    const WorkloadParams p = smallParams();
    const Program prog = WorkloadGenerator::build(p);
    const std::uint32_t lib_first = 1 + p.appFunctions;
    const std::uint32_t handler_first = lib_first + p.libFunctions;
    for (std::uint32_t h : prog.handlers) {
        EXPECT_GE(h, handler_first);
        EXPECT_TRUE(prog.functions[h].isHandler);
        for (const BasicBlock &b : prog.functions[h].blocks) {
            if (b.term == BlockTerm::Call) {
                EXPECT_GE(b.callee, lib_first);
            }
        }
    }
}

TEST(Generator, RootsAreLayerZeroAndDistinct)
{
    const WorkloadParams p = smallParams();
    const Program prog = WorkloadGenerator::build(p);
    std::set<std::uint32_t> roots(prog.transactionRoots.begin(),
                                  prog.transactionRoots.end());
    EXPECT_EQ(roots.size(), prog.transactionRoots.size());
    for (std::uint32_t r : prog.transactionRoots)
        EXPECT_EQ((r - 1) % p.callLayers, 0u);
}

TEST(Generator, LoopsNeverOverlap)
{
    const Program prog = WorkloadGenerator::build(smallParams());
    for (const Function &fn : prog.functions) {
        std::vector<int> cover(fn.blocks.size(), 0);
        for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
            if (fn.blocks[b].term != BlockTerm::LoopBranch)
                continue;
            for (std::size_t k = fn.blocks[b].targetBlock; k <= b; ++k)
                ++cover[k];
        }
        for (int c : cover)
            EXPECT_LE(c, 1);
    }
}

TEST(Generator, FunctionSizesRespectCap)
{
    WorkloadParams p = smallParams();
    p.maxFnBlocks = 16;
    const Program prog = WorkloadGenerator::build(p);
    for (const Function &fn : prog.functions) {
        const Addr blocks =
            (fn.end() - fn.entry + blockBytes - 1) / blockBytes;
        EXPECT_LE(blocks, 17u);  // cap plus alignment slack
    }
}

TEST(ServerSuite, AllSixPresetsBuild)
{
    for (ServerWorkload w : allServerWorkloads()) {
        const Program prog =
            WorkloadGenerator::build(workloadParams(w));
        // Multi-hundred-KB static footprints, per the paper's premise
        // that instruction working sets dwarf the 64KB L1-I.
        EXPECT_GT(prog.footprintBytes(), 512u * 1024)
            << workloadName(w);
        EXPECT_FALSE(prog.handlers.empty());
    }
}

TEST(ServerSuite, NamesAndGroups)
{
    EXPECT_EQ(workloadName(ServerWorkload::OltpDb2), "DB2");
    EXPECT_EQ(workloadGroup(ServerWorkload::OltpDb2), "OLTP");
    EXPECT_EQ(workloadGroup(ServerWorkload::DssQry17), "DSS");
    EXPECT_EQ(workloadGroup(ServerWorkload::WebZeus), "Web");
    EXPECT_EQ(allServerWorkloads().size(), 6u);
}

TEST(ServerSuite, SeedOffsetChangesProgram)
{
    const Program a = WorkloadGenerator::build(
        workloadParams(ServerWorkload::OltpDb2, 0));
    const Program b = WorkloadGenerator::build(
        workloadParams(ServerWorkload::OltpDb2, 1));
    EXPECT_NE(a.codeEnd, b.codeEnd);
}

} // namespace
} // namespace pifetch
