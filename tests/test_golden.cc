/**
 * @file
 * Golden-snapshot regression suite.
 *
 * Locks the registry's structured output for Fig. 2, Fig. 9 (right)
 * and Fig. 10 (coverage and speedup) at small pinned budgets against
 * committed fixtures (tests/golden/<experiment>.json). The
 * serialization must be byte-identical to the fixture at worker
 * thread counts 1 and 4 — the determinism contract of the worker
 * pool plus the canonical-JSON contract of common/results.hh.
 *
 * To regenerate intentionally (after a simulator behavior change),
 * run scripts/regold.sh and commit the diff with an explanation.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "sim/registry.hh"

#ifndef PIFETCH_GOLDEN_DIR
#error "PIFETCH_GOLDEN_DIR must point at tests/golden"
#endif

namespace pifetch {
namespace {

std::string
fixturePath(const GoldenEntry &e)
{
    return std::string(PIFETCH_GOLDEN_DIR) + "/" + goldenFixtureName(e) +
           ".json";
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    std::ostringstream ss;
    ss << is.rdbuf();
    out = ss.str();
    return true;
}

/** Point the first mismatching line out instead of dumping both docs. */
void
expectSameBytes(const std::string &fixture, const std::string &got,
                const std::string &what)
{
    if (fixture == got)
        return;
    std::istringstream a(fixture);
    std::istringstream b(got);
    std::string la;
    std::string lb;
    unsigned line = 0;
    while (true) {
        const bool ha = static_cast<bool>(std::getline(a, la));
        const bool hb = static_cast<bool>(std::getline(b, lb));
        ++line;
        if (!ha && !hb)
            break;
        if (la != lb || ha != hb) {
            FAIL() << what << ": first difference at line " << line
                   << "\n  fixture: " << (ha ? la : "<eof>")
                   << "\n  got:     " << (hb ? lb : "<eof>")
                   << "\nIf the simulator change is intentional, "
                      "regenerate with scripts/regold.sh.";
        }
    }
    FAIL() << what << ": documents differ";  // unreachable safety net
}

TEST(GoldenSuite, CoversTheIssueExperiments)
{
    // The suite must keep locking at least these four documents.
    bool fig2 = false;
    bool fig9 = false;
    bool cov = false;
    bool speed = false;
    for (const GoldenEntry &e : goldenSuite()) {
        fig2 |= goldenFixtureName(e) == "fig2-streams";
        fig9 |= goldenFixtureName(e) == "fig9-history";
        cov |= goldenFixtureName(e) == "fig10-coverage";
        speed |= goldenFixtureName(e) == "fig10-speedup";
        ASSERT_NE(findExperiment(e.experiment), nullptr)
            << e.experiment;
    }
    EXPECT_TRUE(fig2 && fig9 && cov && speed);
}

TEST(GoldenSuite, CoversTheWorkloadZoo)
{
    // The spec-driven fixtures lock the declarative-workload pipeline
    // (lower -> link -> phase schedule) end to end; fixture names must
    // stay unique or two entries would race on one file.
    bool fanout = false;
    bool storm = false;
    std::set<std::string> names;
    for (const GoldenEntry &e : goldenSuite()) {
        fanout |= goldenFixtureName(e) == "zoo-microservice-fanout";
        storm |= goldenFixtureName(e) == "zoo-cold-start-storm";
        EXPECT_TRUE(names.insert(goldenFixtureName(e)).second)
            << "duplicate fixture name " << goldenFixtureName(e);
    }
    EXPECT_TRUE(fanout && storm);
}

TEST(GoldenSuite, MatchesFixturesAtOneAndFourThreads)
{
    for (const GoldenEntry &e : goldenSuite()) {
        SCOPED_TRACE(e.experiment);
        std::string fixture;
        ASSERT_TRUE(readFile(fixturePath(e), fixture))
            << "missing fixture " << fixturePath(e)
            << " — generate it with scripts/regold.sh";

        const std::string serial = goldenJson(e, 1);
        expectSameBytes(fixture, serial, e.experiment + " (threads=1)");

        const std::string pooled = goldenJson(e, 4);
        expectSameBytes(fixture, pooled, e.experiment + " (threads=4)");
    }
}

TEST(GoldenSuite, FixturesAreValidCanonicalJson)
{
    for (const GoldenEntry &e : goldenSuite()) {
        SCOPED_TRACE(e.experiment);
        std::string fixture;
        ASSERT_TRUE(readFile(fixturePath(e), fixture));
        std::string err;
        const auto doc = parseJson(fixture, &err);
        ASSERT_TRUE(doc.has_value()) << err;
        EXPECT_EQ(doc->find("experiment")->str(), e.experiment);
        EXPECT_EQ(doc->find("meta")->find("mode")->str(), "golden");
        ASSERT_NE(doc->find("tables"), nullptr);
        EXPECT_GT(doc->find("tables")->size(), 0u);
        // Canonical form: re-serializing the parsed document yields
        // the fixture bytes again.
        EXPECT_EQ(toJson(*doc, 2) + "\n", fixture);
    }
}

} // namespace
} // namespace pifetch
