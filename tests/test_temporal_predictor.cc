/**
 * @file
 * Generic temporal stream predictor tests (the Figure 2 machinery).
 */

#include <gtest/gtest.h>

#include "streams/temporal_predictor.hh"

namespace pifetch {
namespace {

TemporalPredictorConfig
unboundedCfg(unsigned window = 8)
{
    TemporalPredictorConfig cfg;
    cfg.historyCapacity = 0;
    cfg.indexEntries = 0;
    cfg.numStreams = 2;
    cfg.window = window;
    return cfg;
}

TEST(TemporalPredictor, FirstPassIsUnpredicted)
{
    TemporalStreamPredictor p(unboundedCfg());
    for (Addr a = 0; a < 10; ++a)
        EXPECT_FALSE(p.observe(a).predicted);
    EXPECT_EQ(p.predictedCount(), 0u);
}

TEST(TemporalPredictor, SecondPassIsPredictedAfterTrigger)
{
    TemporalStreamPredictor p(unboundedCfg());
    const std::vector<Addr> seq = {10, 20, 30, 40, 50};
    for (Addr a : seq)
        p.observe(a);

    // The head recurs: it triggers (not predicted itself)...
    const auto head = p.observe(10);
    EXPECT_FALSE(head.predicted);
    EXPECT_TRUE(head.triggered);

    // ...and the rest replays.
    for (std::size_t i = 1; i < seq.size(); ++i) {
        EXPECT_TRUE(p.observe(seq[i]).predicted)
            << "element " << seq[i];
    }
}

TEST(TemporalPredictor, CoveredReflectsActiveWindows)
{
    TemporalStreamPredictor p(unboundedCfg());
    for (Addr a : {10, 20, 30, 40})
        p.observe(a);
    EXPECT_FALSE(p.covered(20));
    p.observe(10);  // trigger
    EXPECT_TRUE(p.covered(20));
    EXPECT_TRUE(p.covered(40));
    EXPECT_FALSE(p.covered(99));
}

TEST(TemporalPredictor, ToleratesNoiseWithinWindow)
{
    TemporalStreamPredictor p(unboundedCfg(8));
    for (Addr a : {10, 20, 30, 40, 50})
        p.observe(a);
    p.observe(10);  // trigger
    // Noise elements (unrecorded) interleave; the stream survives.
    p.observe(1000);
    EXPECT_TRUE(p.observe(20).predicted);
    p.observe(2000);
    EXPECT_TRUE(p.observe(30).predicted);
}

TEST(TemporalPredictor, SkipsMissingElements)
{
    // Recorded: 10 20 30 40 50; replayed visit misses 20 and 30.
    TemporalStreamPredictor p(unboundedCfg(8));
    for (Addr a : {10, 20, 30, 40, 50})
        p.observe(a);
    p.observe(10);
    EXPECT_TRUE(p.observe(40).predicted);  // skip 20, 30 in window
    EXPECT_TRUE(p.observe(50).predicted);
}

TEST(TemporalPredictor, EpisodeReportsJumpDistanceAndLength)
{
    TemporalStreamPredictor p(unboundedCfg());
    std::vector<StreamEpisode> episodes;
    p.onEpisodeEnd([&](const StreamEpisode &e) {
        episodes.push_back(e);
    });

    for (Addr a : {10, 20, 30})
        p.observe(a);
    // 3 unrelated elements, then the head recurs: jump distance 6.
    for (Addr a : {100, 200, 300})
        p.observe(a);
    p.observe(10);
    p.observe(20);
    p.observe(30);
    p.finish();

    ASSERT_EQ(episodes.size(), 1u);
    EXPECT_EQ(episodes[0].jumpDistance, 6u);
    EXPECT_EQ(episodes[0].matched, 2u);
    EXPECT_EQ(episodes[0].length, 2u);
}

TEST(TemporalPredictor, LruStreamReplacement)
{
    TemporalPredictorConfig cfg = unboundedCfg();
    cfg.numStreams = 1;
    TemporalStreamPredictor p(cfg);
    std::vector<StreamEpisode> episodes;
    p.onEpisodeEnd([&](const StreamEpisode &e) {
        episodes.push_back(e);
    });

    for (Addr a : {10, 20, 30})
        p.observe(a);
    for (Addr a = 100; a < 112; ++a)
        p.observe(a);  // filler pushes B out of A's window
    for (Addr a : {500, 600})
        p.observe(a);

    p.observe(10);  // stream A allocated
    EXPECT_TRUE(p.observe(20).predicted);
    p.observe(500);  // stream B replaces A (only one slot)
    EXPECT_TRUE(p.observe(600).predicted);
    EXPECT_FALSE(p.covered(30));  // A is gone
    ASSERT_EQ(episodes.size(), 1u);  // A's episode closed
    EXPECT_EQ(episodes[0].matched, 1u);
}

TEST(TemporalPredictor, BoundedHistoryInvalidatesOldStreams)
{
    TemporalPredictorConfig cfg = unboundedCfg();
    cfg.historyCapacity = 8;
    cfg.indexEntries = 64;
    cfg.indexAssoc = 4;
    TemporalStreamPredictor p(cfg);

    p.observe(999);
    for (Addr a = 0; a < 32; ++a)
        p.observe(a);
    // 999's record was overwritten: recurrence cannot trigger.
    const auto out = p.observe(999);
    EXPECT_FALSE(out.triggered);
}

TEST(TemporalPredictor, ObservationCountsAreConsistent)
{
    TemporalStreamPredictor p(unboundedCfg());
    for (int pass = 0; pass < 3; ++pass) {
        for (Addr a = 0; a < 50; ++a)
            p.observe(a);
    }
    EXPECT_EQ(p.observations(), 150u);
    EXPECT_EQ(p.recorded(), 150u);
    EXPECT_GT(p.predictedCount(), 80u);  // passes 2 and 3 mostly covered
    EXPECT_LE(p.predictedCount(), 150u);
}

TEST(TemporalPredictor, ResetClears)
{
    TemporalStreamPredictor p(unboundedCfg());
    for (Addr a : {1, 2, 3, 1, 2, 3})
        p.observe(a);
    p.reset();
    EXPECT_EQ(p.observations(), 0u);
    EXPECT_EQ(p.recorded(), 0u);
    EXPECT_FALSE(p.observe(1).predicted);
}

/** Property: periodic sequences converge to near-full coverage. */
class PeriodicCoverage : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PeriodicCoverage, RepeatingSequenceIsLearned)
{
    const unsigned period = GetParam();
    TemporalStreamPredictor p(unboundedCfg(16));
    std::uint64_t predicted = 0;
    std::uint64_t total = 0;
    for (int rep = 0; rep < 20; ++rep) {
        for (unsigned i = 0; i < period; ++i) {
            const bool hit = p.observe(1000 + i * 7).predicted;
            if (rep >= 2) {
                ++total;
                predicted += hit ? 1 : 0;
            }
        }
    }
    // After warmup, only the per-period trigger is unpredicted.
    EXPECT_GT(static_cast<double>(predicted) / static_cast<double>(total),
              1.0 - 2.0 / period);
}

INSTANTIATE_TEST_SUITE_P(Periods, PeriodicCoverage,
                         ::testing::Values(8u, 16u, 64u, 256u));

} // namespace
} // namespace pifetch
