/**
 * @file
 * Auto-main for the minitest fallback framework — the counterpart of
 * GoogleTest's gtest_main library.
 */

#include <gtest/gtest.h>

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
