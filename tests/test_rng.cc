/**
 * @file
 * Deterministic RNG tests.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"

namespace pifetch {
namespace {

TEST(Rng, SameSeedSameSequence)
{
    Rng a(1234);
    Rng b(1234);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 5);
}

TEST(Rng, BelowStaysInBounds)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(7);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = r.range(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        saw_lo |= v == 3;
        saw_hi |= v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng r(17);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += r.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, GeometricAtLeastOneAndNearMean)
{
    Rng r(19);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const auto v = r.geometric(8.0);
        ASSERT_GE(v, 1u);
        sum += static_cast<double>(v);
    }
    EXPECT_NEAR(sum / n, 8.0, 0.5);
}

TEST(Rng, GeometricMeanOneDegenerates)
{
    Rng r(23);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.geometric(1.0), 1u);
}

TEST(Rng, ZipfStaysInRange)
{
    Rng r(29);
    for (int i = 0; i < 5000; ++i)
        EXPECT_LT(r.zipf(100, 0.8), 100u);
}

TEST(Rng, ZipfSkewsTowardLowRanks)
{
    Rng r(31);
    int low = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        low += r.zipf(1000, 0.9) < 100 ? 1 : 0;
    // Under uniform sampling only 10% would land below rank 100.
    EXPECT_GT(low, n / 4);
}

TEST(Rng, ZipfSingletonIsZero)
{
    Rng r(37);
    EXPECT_EQ(r.zipf(1, 0.8), 0u);
}

TEST(Rng, ZipfHarmonicExponentIsFiniteAndSkewed)
{
    // Regression: s == 1.0 made one_minus_s exactly 0 and the general
    // inverse CDF divided by it (pow(..., inf) -> 0 or inf indices).
    Rng r(43);
    int low = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const auto v = r.zipf(1000, 1.0);
        ASSERT_LT(v, 1000u);
        low += v < 100 ? 1 : 0;
    }
    // Harmonic skew puts far more than the uniform 10% below rank 100.
    EXPECT_GT(low, n / 4);
}

TEST(Rng, ZipfNearHarmonicMatchesNeighbors)
{
    // The log-form branch (|1-s| < 1e-9) must blend continuously into
    // the general branch: mass below rank 100 of 1000 should be
    // monotone-ish across s = 0.999, 1.0, 1.001.
    const double skews[] = {0.999, 1.0, 1.001};
    double frac[3];
    for (int k = 0; k < 3; ++k) {
        Rng r(47);
        int low = 0;
        const int n = 20000;
        for (int i = 0; i < n; ++i)
            low += r.zipf(1000, skews[k]) < 100 ? 1 : 0;
        frac[k] = static_cast<double>(low) / n;
    }
    EXPECT_NEAR(frac[1], frac[0], 0.02);
    EXPECT_NEAR(frac[1], frac[2], 0.02);
}

/** Property: higher skew concentrates more mass on low ranks. */
class ZipfSkewProperty : public ::testing::TestWithParam<double>
{
};

TEST_P(ZipfSkewProperty, MassBelowMedianGrowsWithSkew)
{
    const double s = GetParam();
    Rng r(41);
    int below = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        below += r.zipf(500, s) < 250 ? 1 : 0;
    // Any positive skew gives more than half the mass to low ranks.
    EXPECT_GT(below, n / 2);
}

INSTANTIATE_TEST_SUITE_P(Skews, ZipfSkewProperty,
                         ::testing::Values(0.3, 0.5, 0.75, 0.9, 1.0,
                                           1.2));

} // namespace
} // namespace pifetch
