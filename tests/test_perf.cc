/**
 * @file
 * Perf-subsystem tests: timer monotonicity, the warm-up/repeat
 * protocol's invocation and op-count contracts, and the BENCH_*.json
 * schema that scripts/perf_compare.py and the CI perf gate consume.
 *
 * Timings themselves are never asserted on (they are host noise); the
 * contracts under test are the deterministic parts — call counts, op
 * counts, key sets and the JSON round trip.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/results.hh"
#include "perf/harness.hh"
#include "perf/kernels.hh"
#include "perf/timer.hh"

namespace pifetch {
namespace {

TEST(PerfTimer, MonotonicSecondsNeverDecreases)
{
    double prev = monotonicSeconds();
    for (int i = 0; i < 1000; ++i) {
        const double now = monotonicSeconds();
        ASSERT_LE(prev, now);
        prev = now;
    }
}

TEST(PerfTimer, StopWatchElapsedIsNonNegativeAndMonotonic)
{
    StopWatch watch;
    double prev = watch.elapsedSeconds();
    EXPECT_GE(prev, 0.0);
    for (int i = 0; i < 1000; ++i) {
        const double now = watch.elapsedSeconds();
        ASSERT_LE(prev, now);
        prev = now;
    }
    watch.restart();
    EXPECT_GE(watch.elapsedSeconds(), 0.0);
}

TEST(PerfHarness, ProtocolRunsWarmupPlusTimedReps)
{
    PerfProtocol protocol;
    protocol.warmupReps = 2;
    protocol.reps = 5;
    unsigned calls = 0;
    const KernelTiming t = measureKernel("counted", protocol, 123, 456,
                                         [&] { ++calls; });
    EXPECT_EQ(calls, 7u);
    EXPECT_EQ(t.name, "counted");
    EXPECT_EQ(t.opsPerRep, 123u);
    EXPECT_EQ(t.bytesPerRep, 456u);
    EXPECT_EQ(t.repSeconds.size(), 5u);
    for (double s : t.repSeconds)
        EXPECT_GE(s, 0.0);
}

TEST(PerfHarness, MedianIsRobustToOneOutlier)
{
    KernelTiming t;
    t.opsPerRep = 1000;
    t.repSeconds = {0.010, 0.010, 5.0};  // one scheduling hiccup
    EXPECT_DOUBLE_EQ(t.medianSeconds(), 0.010);
    EXPECT_DOUBLE_EQ(t.opsPerSec(), 100000.0);

    // Even rep count: mean of the middle pair.
    t.repSeconds = {0.010, 0.020, 0.030, 5.0};
    EXPECT_DOUBLE_EQ(t.medianSeconds(), 0.025);

    // No measurements: defined zeros, not division by zero.
    t.repSeconds.clear();
    EXPECT_DOUBLE_EQ(t.medianSeconds(), 0.0);
    EXPECT_DOUBLE_EQ(t.opsPerSec(), 0.0);
}

/** Tiny-budget options so the whole suite runs in test time. */
PerfOptions
tinyOptions()
{
    PerfOptions opts;
    opts.scale = 0.01;
    opts.protocol.warmupReps = 0;
    opts.protocol.reps = 1;
    return opts;
}

TEST(PerfSuite, OpCountsAreDeterministicAcrossRuns)
{
    // Timings vary run to run; the op counts (the denominator of every
    // reported throughput) must not.
    const PerfOptions opts = tinyOptions();
    const ResultValue a = runPerfSuite(opts);
    const ResultValue b = runPerfSuite(opts);

    const ResultValue *ka = a.find("kernels");
    const ResultValue *kb = b.find("kernels");
    ASSERT_NE(ka, nullptr);
    ASSERT_NE(kb, nullptr);
    ASSERT_EQ(ka->size(), kb->size());
    ASSERT_GE(ka->size(), 4u);
    for (std::size_t i = 0; i < ka->size(); ++i) {
        SCOPED_TRACE(ka->at(i).find("name")->str());
        EXPECT_EQ(*ka->at(i).find("name"), *kb->at(i).find("name"));
        EXPECT_EQ(*ka->at(i).find("ops"), *kb->at(i).find("ops"));
        EXPECT_EQ(*ka->at(i).find("bytes"), *kb->at(i).find("bytes"));
    }
}

TEST(PerfSuite, BenchJsonRoundTripsWithExpectedKeys)
{
    PerfOptions opts = tinyOptions();
    // Two cheap kernels keep this fast while still exercising the
    // selection path.
    opts.kernels = {"cache-lookup", "trace-decode"};
    const ResultValue doc = runPerfSuite(opts);

    // The CLI writes exactly toJson(doc); the gate parses it back.
    std::string err;
    const auto parsed = parseJson(toJson(doc, 2), &err);
    ASSERT_TRUE(parsed.has_value()) << err;
    EXPECT_EQ(*parsed, doc);

    ASSERT_NE(parsed->find("experiment"), nullptr);
    EXPECT_EQ(parsed->find("experiment")->str(), "perf");
    const ResultValue *meta = parsed->find("meta");
    ASSERT_NE(meta, nullptr);
    for (const char *key : {"git", "reps", "warmup_reps", "scale",
                            "workload", "seed"})
        EXPECT_NE(meta->find(key), nullptr) << key;

    const ResultValue *kernels = parsed->find("kernels");
    ASSERT_NE(kernels, nullptr);
    ASSERT_EQ(kernels->size(), 2u);
    EXPECT_EQ(kernels->at(0).find("name")->str(), "cache-lookup");
    EXPECT_EQ(kernels->at(1).find("name")->str(), "trace-decode");
    for (std::size_t i = 0; i < kernels->size(); ++i) {
        const ResultValue &k = kernels->at(i);
        for (const char *key : {"name", "ops", "reps", "warmup_reps",
                                "median_sec", "ops_per_sec",
                                "bytes_per_sec", "rep_seconds"}) {
            ASSERT_NE(k.find(key), nullptr) << key;
        }
        EXPECT_TRUE(k.find("ops")->isNumber());
        EXPECT_TRUE(k.find("ops_per_sec")->isNumber());
        EXPECT_EQ(k.find("rep_seconds")->size(),
                  k.find("reps")->uintValue());
    }

    // The human-readable rendering must exist too (one table).
    const ResultValue *tables = parsed->find("tables");
    ASSERT_NE(tables, nullptr);
    ASSERT_EQ(tables->size(), 1u);
}

TEST(PerfSuite, KernelRegistryIsWellFormed)
{
    std::set<std::string> names;
    for (const PerfKernelSpec &k : perfKernels()) {
        EXPECT_FALSE(k.name.empty());
        EXPECT_FALSE(k.description.empty());
        EXPECT_TRUE(static_cast<bool>(k.run));
        EXPECT_TRUE(names.insert(k.name).second)
            << "duplicate kernel " << k.name;
        EXPECT_EQ(findPerfKernel(k.name), &k);
    }
    // The acceptance bar: at least four distinct kernels.
    EXPECT_GE(names.size(), 4u);
    EXPECT_EQ(findPerfKernel("no-such-kernel"), nullptr);
}

} // namespace
} // namespace pifetch
