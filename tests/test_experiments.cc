/**
 * @file
 * Experiment driver tests (cheap versions of every figure).
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"

namespace pifetch {
namespace {

ExperimentBudget
smallBudget()
{
    ExperimentBudget b;
    b.warmup = 300'000;
    b.measure = 700'000;
    return b;
}

TEST(Fig2, CoverageOrderingMatchesPaper)
{
    // The paper's Figure 2 story: retire-order streams beat access
    // streams beat miss streams, and trap-level separation adds a
    // little more.
    const Fig2Result r = runFig2(ServerWorkload::OltpDb2, smallBudget());
    EXPECT_GT(r.correctPathMisses, 1000u);
    EXPECT_GT(r.retireSepCoverage, r.missCoverage);
    EXPECT_GE(r.retireSepCoverage, r.retireCoverage - 0.002);
    EXPECT_GT(r.retireCoverage, r.accessCoverage - 0.005);
    for (double c : {r.missCoverage, r.accessCoverage, r.retireCoverage,
                     r.retireSepCoverage}) {
        EXPECT_GE(c, 0.0);
        EXPECT_LE(c, 1.0);
    }
}

TEST(Fig3, FractionsFormDistribution)
{
    const Fig3Result r = runFig3(ServerWorkload::OltpDb2, 500'000);
    EXPECT_GT(r.regions, 1000u);
    double sum = 0.0;
    for (unsigned i = 0; i < r.density.ranges(); ++i)
        sum += r.density.fractionAt(i);
    EXPECT_NEAR(sum, 1.0, 1e-9);

    // Section 3.1: more than half of the regions reference more than
    // one block.
    EXPECT_LT(r.density.fractionAt(0), 0.5);

    // Most regions are a single contiguous group; some discontinuous.
    EXPECT_GT(r.groups.fractionAt(0), 0.5);
    EXPECT_GT(1.0 - r.groups.fractionAt(0), 0.02);
}

TEST(Fig7, JumpDistancesSpreadAcrossScales)
{
    const Log2Histogram h = runFig7(ServerWorkload::OltpDb2, 500'000);
    EXPECT_GT(h.totalWeight(), 0.0);
    // Jumps must not all be short: the paper's deep-history argument.
    EXPECT_GT(h.highestBucket(), 10u);
    EXPECT_LT(h.cumulativeAt(8), 0.9);
}

TEST(Fig8Left, NeighbourAccessesSkewForward)
{
    const LinearHistogram h =
        runFig8Left(ServerWorkload::OltpDb2, 500'000);
    EXPECT_GT(h.totalWeight(), 0.0);
    // Succeeding blocks dominate preceding ones (Section 5.2)...
    double before = 0.0;
    double after = 0.0;
    for (int off = -4; off <= -1; ++off)
        before += h.fractionAt(off);
    for (int off = 1; off <= 12; ++off)
        after += h.fractionAt(off);
    EXPECT_GT(after, before);
    // ...but backward accesses occur with significant frequency.
    EXPECT_GT(before, 0.02);
    // Frequency decays with forward distance.
    EXPECT_GT(h.fractionAt(1), h.fractionAt(8));
}

TEST(Fig8Right, CoverageGrowsWithRegionSize)
{
    const auto points =
        runFig8Right(ServerWorkload::OltpDb2, smallBudget());
    ASSERT_EQ(points.size(), 5u);
    EXPECT_EQ(points.front().regionBlocks, 1u);
    EXPECT_EQ(points.back().regionBlocks, 8u);
    // 8-block regions beat single-block regions at TL0.
    EXPECT_GT(points.back().tl0Coverage,
              points.front().tl0Coverage);
    for (const auto &p : points) {
        EXPECT_GE(p.tl0Coverage, 0.0);
        EXPECT_LE(p.tl0Coverage, 1.0);
        EXPECT_GE(p.tl1Coverage, 0.0);
        EXPECT_LE(p.tl1Coverage, 1.0);
    }
}

TEST(Fig9Left, LongStreamsContribute)
{
    const Log2Histogram h = runFig9Left(ServerWorkload::OltpDb2,
                                        500'000);
    EXPECT_GT(h.totalWeight(), 0.0);
    // Streams longer than 32 regions contribute meaningfully
    // (Section 5.3's medium/long stream argument).
    EXPECT_LT(h.cumulativeAt(5), 0.98);
}

TEST(Fig9Right, CoverageGrowsWithHistorySize)
{
    const auto points = runFig9Right(
        ServerWorkload::OltpDb2, smallBudget(), {2048, 32768, 524288});
    ASSERT_EQ(points.size(), 3u);
    // Monotone within tolerance (Section 5.4).
    EXPECT_GE(points[1].coverage, points[0].coverage - 0.01);
    EXPECT_GE(points[2].coverage, points[1].coverage - 0.01);
    EXPECT_GT(points[2].coverage, 0.7);
}

TEST(Fig10Coverage, PifWinsAndIsNearPerfect)
{
    const auto points =
        runFig10Coverage(ServerWorkload::OltpDb2, smallBudget());
    ASSERT_EQ(points.size(), 3u);
    double nl = 0.0;
    double tifs = 0.0;
    double pif = 0.0;
    for (const auto &p : points) {
        if (p.kind == PrefetcherKind::NextLine)
            nl = p.missCoverage;
        if (p.kind == PrefetcherKind::Tifs)
            tifs = p.missCoverage;
        if (p.kind == PrefetcherKind::Pif)
            pif = p.missCoverage;
    }
    EXPECT_GT(pif, tifs);
    EXPECT_GT(pif, nl);
    EXPECT_GT(pif, 0.85);       // "nearly perfect coverage"
    EXPECT_GT(tifs, 0.4);       // TIFS well above zero...
    EXPECT_LT(tifs, pif - 0.03);  // ...but clearly below PIF
}

TEST(Fig10Speedup, OrderingAndPerfectBound)
{
    const auto points =
        runFig10Speedup(ServerWorkload::OltpDb2, smallBudget());
    ASSERT_EQ(points.size(), 5u);
    double none = 0.0;
    double pif = 0.0;
    double perfect = 0.0;
    for (const auto &p : points) {
        if (p.kind == PrefetcherKind::None)
            none = p.speedup;
        if (p.kind == PrefetcherKind::Pif)
            pif = p.speedup;
        if (p.kind == PrefetcherKind::Perfect)
            perfect = p.speedup;
    }
    EXPECT_DOUBLE_EQ(none, 1.0);
    EXPECT_GT(pif, 1.05);
    EXPECT_GE(perfect, pif - 0.05);
}

} // namespace
} // namespace pifetch
