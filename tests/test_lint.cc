/**
 * @file
 * Lint-subsystem tests: the tokenizer, every catalog rule via its
 * embedded fixtures (the planted-violation self-check), suppression
 * parsing and the meta rules, the canonical JSON report, and a scan
 * of the real tree that must come back clean.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/results.hh"
#include "lint/driver.hh"
#include "lint/lexer.hh"
#include "lint/rules.hh"

namespace pifetch {
namespace lint {
namespace {

// -------------------------------------------------------------- lexer

TEST(LintLexer, StringsAndCommentsAreNotTokens)
{
    const LexedSource lx =
        lex("int a = 1; // rand()\n"
            "const char *s = \"rand()\";\n"
            "/* std::endl */ int b;\n");
    for (const Token &t : lx.tokens) {
        EXPECT_NE(t.text, "rand");
        EXPECT_NE(t.text, "endl");
    }
    ASSERT_EQ(lx.comments.size(), 2u);
    EXPECT_FALSE(lx.comments[0].block);
    EXPECT_TRUE(lx.comments[1].block);
    EXPECT_EQ(lx.comments[0].line, 1u);
    EXPECT_EQ(lx.comments[1].line, 3u);
}

TEST(LintLexer, RawStringsSwallowDelimiters)
{
    const LexedSource lx =
        lex("auto s = R\"x(rand(); // not a comment)x\"; int tail;\n");
    ASSERT_FALSE(lx.tokens.empty());
    EXPECT_TRUE(lx.comments.empty());
    EXPECT_EQ(lx.tokens.back().text, ";");
    const bool sawTail = std::any_of(
        lx.tokens.begin(), lx.tokens.end(),
        [](const Token &t) { return t.text == "tail"; });
    EXPECT_TRUE(sawTail);
}

TEST(LintLexer, DirectivesFoldContinuations)
{
    const LexedSource lx =
        lex("#define WIDE(a) \\\n    ((a) + 1)\nint x;\n");
    ASSERT_FALSE(lx.tokens.empty());
    EXPECT_EQ(lx.tokens[0].kind, Token::Kind::Directive);
    // The body after the continuation stays inside the directive
    // token, not in the ordinary stream.
    for (std::size_t i = 1; i < lx.tokens.size(); ++i)
        EXPECT_NE(lx.tokens[i].text, "a");
}

TEST(LintLexer, LineNumbersTrackNewlines)
{
    const LexedSource lx = lex("int a;\n\nint b;\n");
    ASSERT_GE(lx.tokens.size(), 6u);
    EXPECT_EQ(lx.tokens[0].line, 1u);
    EXPECT_EQ(lx.tokens[3].line, 3u);
    EXPECT_EQ(lx.lines, 3u);
}

// -------------------------------------------- per-rule fixture replay

TEST(LintRules, SelfTestPasses)
{
    const std::vector<std::string> failures = runRuleSelfTest();
    for (const std::string &f : failures)
        ADD_FAILURE() << f;
    EXPECT_TRUE(failures.empty());
}

TEST(LintRules, EveryBadFixtureFiresItsOwnRule)
{
    for (const Rule &rule : ruleCatalog()) {
        if (rule.check == nullptr)
            continue;  // meta rules are driver-enforced
        const std::vector<Finding> bad =
            lintSource(rule.fixture.path, rule.fixture.bad, {rule.id});
        const bool fired = std::any_of(
            bad.begin(), bad.end(), [&](const Finding &f) {
                return f.violation.rule == rule.id && !f.suppressed;
            });
        EXPECT_TRUE(fired) << rule.id << ": bad fixture did not fire";

        const std::vector<Finding> good =
            lintSource(rule.fixture.path, rule.fixture.good, {rule.id});
        for (const Finding &f : good)
            EXPECT_TRUE(f.suppressed)
                << rule.id << ": good fixture fired at line "
                << f.violation.line;
    }
}

TEST(LintRules, CatalogIsWellFormed)
{
    std::set<std::string> ids;
    for (const Rule &rule : ruleCatalog()) {
        EXPECT_TRUE(ids.insert(rule.id).second)
            << "duplicate rule id " << rule.id;
        EXPECT_FALSE(rule.summary.empty()) << rule.id;
        EXPECT_FALSE(rule.rationale.empty()) << rule.id;
        EXPECT_EQ(findRule(rule.id), &rule);
    }
    EXPECT_EQ(findRule("no-such-rule"), nullptr);
    // The two driver-enforced meta rules must be present.
    EXPECT_NE(findRule("lint-bad-suppression"), nullptr);
    EXPECT_NE(findRule("lint-unused-suppression"), nullptr);
}

// ------------------------------------------------------- suppressions

namespace {

/** Unsuppressed findings for @p rule in @p findings. */
unsigned
countOpen(const std::vector<Finding> &findings, const std::string &rule)
{
    unsigned n = 0;
    for (const Finding &f : findings)
        if (f.violation.rule == rule && !f.suppressed)
            ++n;
    return n;
}

} // namespace

TEST(LintSuppression, TrailingCommentSuppresses)
{
    const std::vector<Finding> fs = lintSource(
        "src/x/y.cc",
        "int f() { return rand(); }  // lint:allow(D-rand): fixture\n");
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].violation.rule, "D-rand");
    EXPECT_TRUE(fs[0].suppressed);
    EXPECT_EQ(fs[0].justification, "fixture");
}

TEST(LintSuppression, LineAboveSuppresses)
{
    const std::vector<Finding> fs = lintSource(
        "src/x/y.cc",
        "// lint:allow(D-rand): fixture\n"
        "int f() { return rand(); }\n");
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_TRUE(fs[0].suppressed);
}

TEST(LintSuppression, WindowIsOnlyOneLine)
{
    // Two lines of distance: the waiver misses, so the violation
    // stays open and the waiver itself is reported as unused.
    const std::vector<Finding> fs = lintSource(
        "src/x/y.cc",
        "// lint:allow(D-rand): fixture\n"
        "\n"
        "int f() { return rand(); }\n");
    EXPECT_EQ(countOpen(fs, "D-rand"), 1u);
    EXPECT_EQ(countOpen(fs, "lint-unused-suppression"), 1u);
}

TEST(LintSuppression, MissingJustificationIsAViolation)
{
    const std::vector<Finding> fs = lintSource(
        "src/x/y.cc",
        "int f() { return rand(); }  // lint:allow(D-rand)\n");
    EXPECT_EQ(countOpen(fs, "lint-bad-suppression"), 1u);
    EXPECT_EQ(countOpen(fs, "D-rand"), 1u);

    const std::vector<Finding> colonOnly = lintSource(
        "src/x/y.cc",
        "int f() { return rand(); }  // lint:allow(D-rand):   \n");
    EXPECT_EQ(countOpen(colonOnly, "lint-bad-suppression"), 1u);
}

TEST(LintSuppression, UnknownRuleIdIsAViolation)
{
    const std::vector<Finding> fs = lintSource(
        "src/x/y.cc",
        "int v = 1;  // lint:allow(D-bogus): no such rule\n");
    EXPECT_EQ(countOpen(fs, "lint-bad-suppression"), 1u);
}

TEST(LintSuppression, UnusedSuppressionIsAViolation)
{
    const std::vector<Finding> fs = lintSource(
        "src/x/y.cc",
        "int v = 1;  // lint:allow(D-rand): nothing here\n");
    EXPECT_EQ(countOpen(fs, "lint-unused-suppression"), 1u);
}

TEST(LintSuppression, BlockCommentsAreDocumentationOnly)
{
    // The syntax inside a block comment neither suppresses nor
    // malfunctions (driver.hh's own doc block depends on this).
    const std::vector<Finding> fs = lintSource(
        "src/x/y.cc",
        "/* lint:allow(D-rand): not a waiver */\n"
        "int f() { return rand(); }\n");
    EXPECT_EQ(countOpen(fs, "D-rand"), 1u);
    EXPECT_EQ(countOpen(fs, "lint-bad-suppression"), 0u);
    EXPECT_EQ(countOpen(fs, "lint-unused-suppression"), 0u);
}

TEST(LintSuppression, MultipleIdsInOneWaiver)
{
    const std::vector<Finding> fs = lintSource(
        "src/x/y.cc",
        "// lint:allow(D-rand, H-endl): fixture\n"
        "int f() { std::cout << std::endl; return rand(); }\n");
    EXPECT_EQ(countOpen(fs, "D-rand"), 0u);
    EXPECT_EQ(countOpen(fs, "H-endl"), 0u);
    EXPECT_EQ(countOpen(fs, "lint-unused-suppression"), 0u);
}

// -------------------------------------------------------- JSON report

TEST(LintReportJson, RoundTripsThroughParseJson)
{
    LintReport report;
    report.filesScanned = 1;
    report.findings = lintSource(
        "src/x/y.cc",
        "int f() { return rand(); }\n"
        "int g() { return rand(); }  // lint:allow(D-rand): fixture\n");
    ASSERT_EQ(report.findings.size(), 2u);
    EXPECT_EQ(report.errors(), 1u);
    EXPECT_EQ(report.suppressedCount(), 1u);
    EXPECT_FALSE(report.clean());

    const ResultValue out = toResult(report, "/tmp/repo");
    const std::string json = toJson(out);
    std::string err;
    const auto parsed = parseJson(json, &err);
    ASSERT_TRUE(parsed.has_value()) << err;
    EXPECT_EQ(*parsed, out);

    const ResultValue *summary = parsed->find("summary");
    ASSERT_NE(summary, nullptr);
    EXPECT_EQ(summary->find("errors")->uintValue(), 1u);
    EXPECT_EQ(summary->find("suppressed")->uintValue(), 1u);
    EXPECT_FALSE(summary->find("clean")->boolean());

    const ResultValue *violations = parsed->find("violations");
    ASSERT_NE(violations, nullptr);
    ASSERT_EQ(violations->size(), 2u);
    const ResultValue &first = violations->at(0);
    EXPECT_EQ(first.find("file")->str(), "src/x/y.cc");
    EXPECT_EQ(first.find("rule")->str(), "D-rand");
    EXPECT_EQ(first.find("severity")->str(), "error");
    EXPECT_EQ(first.find("line")->uintValue(), 1u);
    const ResultValue &second = violations->at(1);
    EXPECT_TRUE(second.find("suppressed")->boolean());
    EXPECT_EQ(second.find("justification")->str(), "fixture");
}

TEST(LintReportJson, ReportIsDeterministic)
{
    LintReport report;
    report.filesScanned = 1;
    report.findings =
        lintSource("src/x/y.cc", "int f() { return rand(); }\n");
    const std::string a = toJson(toResult(report, "/r"));
    const std::string b = toJson(toResult(report, "/r"));
    EXPECT_EQ(a, b);
}

// ---------------------------------------------------- the tree itself

#ifdef PIFETCH_LINT_ROOT
TEST(LintTree, RepositoryLintsClean)
{
    LintOptions opts;
    opts.root = PIFETCH_LINT_ROOT;
    std::string err;
    const LintReport report = runLint(opts, &err);
    EXPECT_TRUE(err.empty()) << err;
    EXPECT_GT(report.filesScanned, 100u);
    for (const Finding &f : report.findings) {
        if (!f.suppressed) {
            ADD_FAILURE()
                << f.file << ":" << f.violation.line << ": "
                << f.violation.rule << ": " << f.violation.message;
        }
    }
    EXPECT_TRUE(report.clean());
    EXPECT_EQ(report.warnings(), 0u);
    // Every waiver in the tree carries its review record.
    for (const Finding &f : report.findings) {
        if (f.suppressed) {
            EXPECT_FALSE(f.justification.empty())
                << f.file << ":" << f.violation.line;
        }
    }
}

TEST(LintTree, PathFiltersNarrowTheScan)
{
    LintOptions all;
    all.root = PIFETCH_LINT_ROOT;
    LintOptions some = all;
    some.paths = {"src/lint"};
    std::string err;
    const LintReport rAll = runLint(all, &err);
    const LintReport rSome = runLint(some, &err);
    EXPECT_TRUE(err.empty()) << err;
    EXPECT_LT(rSome.filesScanned, rAll.filesScanned);
    EXPECT_GE(rSome.filesScanned, 6u);  // the lint subsystem itself
}
#endif

} // namespace
} // namespace lint
} // namespace pifetch
