/**
 * @file
 * Multi-core runner tests.
 */

#include <gtest/gtest.h>

#include "sim/multicore.hh"

namespace pifetch {
namespace {

TEST(Multicore, PerCoreResultsDiffer)
{
    const auto res = runMulticoreTrace(ServerWorkload::OltpDb2,
                                       PrefetcherKind::None, 3,
                                       100'000, 200'000);
    ASSERT_EQ(res.perCore.size(), 3u);
    // Distinct seeds: cores see different interleavings.
    EXPECT_NE(res.perCore[0].misses, res.perCore[1].misses);
    for (const TraceRunResult &r : res.perCore)
        EXPECT_GT(r.accesses, 0u);
}

TEST(Multicore, AggregatesAreConsistent)
{
    const auto res = runMulticoreTrace(ServerWorkload::WebZeus,
                                       PrefetcherKind::None, 2,
                                       100'000, 200'000);
    std::uint64_t total = 0;
    for (const TraceRunResult &r : res.perCore)
        total += r.misses;
    EXPECT_EQ(res.totalMisses(), total);
    EXPECT_GT(res.meanMissRatio(), 0.0);
    EXPECT_LT(res.meanMissRatio(), 1.0);
}

TEST(Multicore, PifImprovesMeanAcrossCores)
{
    const auto base = runMulticoreTrace(ServerWorkload::OltpDb2,
                                        PrefetcherKind::None, 2,
                                        150'000, 300'000);
    const auto pif = runMulticoreTrace(ServerWorkload::OltpDb2,
                                       PrefetcherKind::Pif, 2,
                                       150'000, 300'000);
    EXPECT_LT(pif.totalMisses(), base.totalMisses() / 2);
    EXPECT_GT(pif.meanPifCoverage(), 0.7);
}

TEST(Multicore, CycleRunnerAveragesUipc)
{
    const auto res = runMulticoreCycle(ServerWorkload::OltpDb2,
                                       PrefetcherKind::None, 2,
                                       100'000, 200'000);
    ASSERT_EQ(res.perCore.size(), 2u);
    EXPECT_GT(res.meanUipc(), 0.1);
    EXPECT_GT(res.totalUserInstrs(), 300'000u);
}

TEST(Multicore, DeterministicAcrossInvocations)
{
    const auto a = runMulticoreTrace(ServerWorkload::DssQry17,
                                     PrefetcherKind::Tifs, 2,
                                     100'000, 150'000);
    const auto b = runMulticoreTrace(ServerWorkload::DssQry17,
                                     PrefetcherKind::Tifs, 2,
                                     100'000, 150'000);
    for (std::size_t c = 0; c < 2; ++c) {
        EXPECT_EQ(a.perCore[c].misses, b.perCore[c].misses);
        EXPECT_EQ(a.perCore[c].accesses, b.perCore[c].accesses);
    }
}

/** Field-by-field equality of two functional results. */
void
expectSameTraceResults(const MulticoreTraceResult &a,
                       const MulticoreTraceResult &b)
{
    ASSERT_EQ(a.perCore.size(), b.perCore.size());
    for (std::size_t c = 0; c < a.perCore.size(); ++c) {
        const TraceRunResult &x = a.perCore[c];
        const TraceRunResult &y = b.perCore[c];
        EXPECT_EQ(x.instrs, y.instrs);
        EXPECT_EQ(x.accesses, y.accesses);
        EXPECT_EQ(x.misses, y.misses);
        EXPECT_EQ(x.wrongPathFetches, y.wrongPathFetches);
        EXPECT_EQ(x.mispredicts, y.mispredicts);
        EXPECT_EQ(x.interrupts, y.interrupts);
        EXPECT_EQ(x.prefetchIssued, y.prefetchIssued);
        EXPECT_EQ(x.prefetchFills, y.prefetchFills);
        EXPECT_EQ(x.usefulPrefetches, y.usefulPrefetches);
        EXPECT_DOUBLE_EQ(x.pifCoverageTl0, y.pifCoverageTl0);
        EXPECT_DOUBLE_EQ(x.pifCoverageTl1, y.pifCoverageTl1);
        EXPECT_DOUBLE_EQ(x.pifCoverage, y.pifCoverage);
    }
}

TEST(Multicore, TraceRunnerBitIdenticalAcrossThreadCounts)
{
    SystemConfig serial_cfg;
    serial_cfg.threads = 1;
    SystemConfig parallel_cfg;
    parallel_cfg.threads = 4;

    const auto serial = runMulticoreTrace(ServerWorkload::OltpDb2,
                                          PrefetcherKind::Pif, 4,
                                          100'000, 200'000,
                                          serial_cfg);
    const auto parallel = runMulticoreTrace(ServerWorkload::OltpDb2,
                                            PrefetcherKind::Pif, 4,
                                            100'000, 200'000,
                                            parallel_cfg);
    expectSameTraceResults(serial, parallel);
}

TEST(Multicore, CycleRunnerBitIdenticalAcrossThreadCounts)
{
    SystemConfig serial_cfg;
    serial_cfg.threads = 1;
    SystemConfig parallel_cfg;
    parallel_cfg.threads = 3;

    const auto serial = runMulticoreCycle(ServerWorkload::WebApache,
                                          PrefetcherKind::Tifs, 3,
                                          80'000, 150'000, serial_cfg);
    const auto parallel = runMulticoreCycle(ServerWorkload::WebApache,
                                            PrefetcherKind::Tifs, 3,
                                            80'000, 150'000,
                                            parallel_cfg);
    ASSERT_EQ(serial.perCore.size(), parallel.perCore.size());
    for (std::size_t c = 0; c < serial.perCore.size(); ++c) {
        EXPECT_EQ(serial.perCore[c].userInstrs,
                  parallel.perCore[c].userInstrs);
        EXPECT_EQ(serial.perCore[c].cycles, parallel.perCore[c].cycles);
        EXPECT_DOUBLE_EQ(serial.perCore[c].uipc,
                         parallel.perCore[c].uipc);
    }
}

TEST(Multicore, EmptyResultIsSafe)
{
    MulticoreTraceResult empty;
    EXPECT_DOUBLE_EQ(empty.meanMissRatio(), 0.0);
    EXPECT_DOUBLE_EQ(empty.meanPifCoverage(), 0.0);
    EXPECT_EQ(empty.totalMisses(), 0u);
    MulticoreCycleResult empty_cycle;
    EXPECT_DOUBLE_EQ(empty_cycle.meanUipc(), 0.0);
}

} // namespace
} // namespace pifetch
