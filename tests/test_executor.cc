/**
 * @file
 * Executor tests: control-flow continuity, traps, determinism.
 */

#include <gtest/gtest.h>

#include "test_util.hh"
#include "trace/executor.hh"
#include "trace/generator.hh"

namespace pifetch {
namespace {

ExecutorConfig
quietConfig(std::uint64_t seed = 5)
{
    ExecutorConfig cfg;
    cfg.seed = seed;
    cfg.interruptRate = 0.0;
    return cfg;
}

TEST(Executor, StartsInDispatcher)
{
    const Program prog = testutil::tinyProgram();
    Executor exec(prog, quietConfig());
    const RetiredInstr first = exec.next();
    EXPECT_EQ(first.pc, prog.functions[0].entry);
    EXPECT_EQ(first.trapLevel, 0);
}

TEST(Executor, PcChainIsContinuous)
{
    const Program prog = testutil::tinyProgram(0.5);
    Executor exec(prog, quietConfig());
    RetiredInstr prev = exec.next();
    for (int i = 0; i < 5000; ++i) {
        const RetiredInstr cur = exec.next();
        ASSERT_EQ(cur.pc, prev.nextPc())
            << "discontinuity at instruction " << i;
        prev = cur;
    }
}

TEST(Executor, DispatcherCallTargetsRoot)
{
    const Program prog = testutil::tinyProgram();
    Executor exec(prog, quietConfig());
    // Walk until the first call retires.
    for (int i = 0; i < 100; ++i) {
        const RetiredInstr r = exec.next();
        if (r.kind == InstrKind::Call) {
            EXPECT_EQ(r.target, prog.functions[1].entry);
            return;
        }
    }
    FAIL() << "no call retired";
}

TEST(Executor, ReturnsTargetCallSiteContinuation)
{
    const Program prog = testutil::tinyProgram();
    Executor exec(prog, quietConfig());
    Addr expected_return = invalidAddr;
    for (int i = 0; i < 200; ++i) {
        const RetiredInstr r = exec.next();
        if (r.kind == InstrKind::Call &&
            r.target == prog.functions[2].entry) {
            expected_return = r.pc + instrBytes;
        }
        if (r.kind == InstrKind::Return && expected_return != invalidAddr) {
            EXPECT_EQ(r.target, expected_return);
            return;
        }
    }
    FAIL() << "no leaf call/return pair retired";
}

TEST(Executor, TransactionsAccumulate)
{
    const Program prog = testutil::tinyProgram();
    Executor exec(prog, quietConfig());
    exec.run(5000, [](const RetiredInstr &) {});
    EXPECT_GT(exec.transactions(), 50u);
}

TEST(Executor, CondBranchFollowsProbability)
{
    const Program always = testutil::tinyProgram(1.0);
    Executor exec(always, quietConfig());
    int taken = 0;
    int total = 0;
    for (int i = 0; i < 2000; ++i) {
        const RetiredInstr r = exec.next();
        if (r.kind == InstrKind::CondBranch) {
            ++total;
            taken += r.taken ? 1 : 0;
        }
    }
    ASSERT_GT(total, 0);
    EXPECT_EQ(taken, total);  // probability 1.0: always taken
}

TEST(Executor, DeterministicForSeed)
{
    const Program prog = testutil::tinyProgram(0.5);
    Executor a(prog, quietConfig(7));
    Executor b(prog, quietConfig(7));
    for (int i = 0; i < 2000; ++i) {
        const RetiredInstr ra = a.next();
        const RetiredInstr rb = b.next();
        ASSERT_EQ(ra.pc, rb.pc);
        ASSERT_EQ(ra.taken, rb.taken);
    }
}

TEST(Executor, InterruptsEnterTrapLevelOneAndReturn)
{
    const Program prog = testutil::tinyProgram();
    ExecutorConfig cfg = quietConfig();
    cfg.interruptRate = 0.01;  // frequent, for test coverage
    Executor exec(prog, cfg);

    bool saw_handler = false;
    bool saw_trap_return = false;
    RetiredInstr prev = exec.next();
    for (int i = 0; i < 20000; ++i) {
        const RetiredInstr cur = exec.next();
        if (cur.trapLevel == 1) {
            saw_handler = true;
            // Handler body must come from the handler function.
            EXPECT_GE(cur.pc, prog.functions[3].entry);
        }
        if (cur.kind == InstrKind::TrapReturn) {
            saw_trap_return = true;
            EXPECT_EQ(cur.trapLevel, 1);
        }
        if (prev.kind == InstrKind::TrapReturn) {
            // Execution resumes exactly at the interrupted PC.
            EXPECT_EQ(cur.pc, prev.target);
            EXPECT_EQ(cur.trapLevel, 0);
        }
        // Trap entry: level rises without a control instruction.
        if (cur.trapLevel > prev.trapLevel) {
            EXPECT_EQ(cur.pc, prog.functions[3].entry);
        }
        prev = cur;
    }
    EXPECT_TRUE(saw_handler);
    EXPECT_TRUE(saw_trap_return);
    EXPECT_GT(exec.interrupts(), 0u);
}

TEST(Executor, NoNestedInterrupts)
{
    const Program prog = testutil::tinyProgram();
    ExecutorConfig cfg = quietConfig();
    cfg.interruptRate = 0.05;
    Executor exec(prog, cfg);
    for (int i = 0; i < 20000; ++i)
        EXPECT_LE(exec.next().trapLevel, 1);
}

TEST(Executor, DepthCapElidesCalls)
{
    // Two mutually-calling functions would recurse forever without
    // the cap: fnA calls fnB, fnB calls fnA.
    Program prog;
    prog.functions.resize(3);
    testutil::addBlock(prog.functions[0], 4, BlockTerm::Call, 1);
    testutil::addBlock(prog.functions[0], 4, BlockTerm::Jump, 0);
    testutil::addBlock(prog.functions[1], 4, BlockTerm::Call, 2);
    testutil::addBlock(prog.functions[1], 4, BlockTerm::Return);
    testutil::addBlock(prog.functions[2], 4, BlockTerm::Call, 1);
    testutil::addBlock(prog.functions[2], 4, BlockTerm::Return);
    prog.transactionRoots = {1};
    prog.transactionWeights = {1.0};
    prog.handlers = {};
    testutil::layoutAll(prog);

    ExecutorConfig cfg = quietConfig();
    cfg.maxCallDepth = 8;
    Executor exec(prog, cfg);
    // Must not hang or overflow: run a large number of instructions.
    exec.run(50000, [](const RetiredInstr &) {});
    EXPECT_GT(exec.transactions(), 0u);
}

TEST(Executor, LoopIteratesGeometrically)
{
    // Single function with a loop of mean 4 iterations.
    Program prog;
    prog.functions.resize(2);
    testutil::addBlock(prog.functions[0], 4, BlockTerm::Call, 1);
    testutil::addBlock(prog.functions[0], 4, BlockTerm::Jump, 0);
    Function &fn = prog.functions[1];
    testutil::addBlock(fn, 4, BlockTerm::FallThrough);
    testutil::addBlock(fn, 4, BlockTerm::LoopBranch, 1, 0.75);
    testutil::addBlock(fn, 4, BlockTerm::Return);
    prog.transactionRoots = {1};
    prog.transactionWeights = {1.0};
    testutil::layoutAll(prog);

    Executor exec(prog, quietConfig());
    std::uint64_t loop_branches = 0;
    std::uint64_t taken = 0;
    for (int i = 0; i < 100000; ++i) {
        const RetiredInstr r = exec.next();
        if (r.kind == InstrKind::CondBranch) {
            ++loop_branches;
            taken += r.taken ? 1 : 0;
        }
    }
    ASSERT_GT(loop_branches, 1000u);
    EXPECT_NEAR(static_cast<double>(taken) /
                    static_cast<double>(loop_branches),
                0.75, 0.03);
}

TEST(Executor, GeneratedWorkloadRunsWithoutDiscontinuities)
{
    WorkloadParams p;
    p.appFunctions = 150;
    p.libFunctions = 30;
    p.handlers = 3;
    p.callLayers = 5;
    p.transactions = 3;
    p.seed = 3;
    const Program prog = WorkloadGenerator::build(p);

    ExecutorConfig cfg;
    cfg.seed = 17;
    cfg.interruptRate = 1e-4;
    Executor exec(prog, cfg);
    RetiredInstr prev = exec.next();
    for (int i = 0; i < 100000; ++i) {
        const RetiredInstr cur = exec.next();
        if (cur.trapLevel == prev.trapLevel) {
            ASSERT_EQ(cur.pc, prev.nextPc())
                << "discontinuity at " << i;
        }
        prev = cur;
    }
}

} // namespace
} // namespace pifetch
