/**
 * @file
 * Set-associative cache model tests.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"

namespace pifetch {
namespace {

CacheConfig
tinyCache(std::uint64_t size = 4 * 64, unsigned assoc = 2)
{
    CacheConfig c;
    c.name = "test";
    c.sizeBytes = size;
    c.assoc = assoc;
    c.blockBytes = 64;
    return c;
}

TEST(Cache, ColdAccessMisses)
{
    Cache c(tinyCache());
    EXPECT_FALSE(c.access(1).hit);
    EXPECT_EQ(c.misses(), 1u);
    EXPECT_EQ(c.hits(), 0u);
}

TEST(Cache, FillThenHit)
{
    Cache c(tinyCache());
    c.fill(1);
    EXPECT_TRUE(c.access(1).hit);
    EXPECT_EQ(c.hits(), 1u);
}

TEST(Cache, ProbeDoesNotDisturbState)
{
    Cache c(tinyCache());
    c.fill(1);
    EXPECT_TRUE(c.probe(1));
    EXPECT_FALSE(c.probe(2));
    EXPECT_EQ(c.hits(), 0u);
    EXPECT_EQ(c.misses(), 0u);
}

TEST(Cache, LruEvictionOrder)
{
    // 2 sets x 2 ways; blocks 0,2,4 map to set 0.
    Cache c(tinyCache());
    c.fill(0);
    c.fill(2);
    c.access(0);           // 0 is now MRU; 2 is LRU
    const Addr victim = c.fill(4);
    EXPECT_EQ(victim, 2u);
    EXPECT_TRUE(c.probe(0));
    EXPECT_FALSE(c.probe(2));
    EXPECT_TRUE(c.probe(4));
}

TEST(Cache, FillReturnsInvalidWhenNoVictim)
{
    Cache c(tinyCache());
    EXPECT_EQ(c.fill(0), invalidAddr);
    EXPECT_EQ(c.fill(2), invalidAddr);  // second way, still free
}

TEST(Cache, PrefetchedBitLifecycle)
{
    Cache c(tinyCache());
    c.fill(1, true);
    EXPECT_TRUE(c.isPrefetched(1));

    const auto first = c.access(1);
    EXPECT_TRUE(first.hit);
    EXPECT_TRUE(first.firstDemandOfPrefetch);
    EXPECT_FALSE(c.isPrefetched(1));

    const auto second = c.access(1);
    EXPECT_TRUE(second.hit);
    EXPECT_FALSE(second.firstDemandOfPrefetch);
    EXPECT_EQ(c.usefulPrefetches(), 1u);
}

TEST(Cache, UnusedPrefetchCountedOnEviction)
{
    Cache c(tinyCache());
    c.fill(0, true);
    c.fill(2);
    c.access(2);
    c.fill(4);  // evicts LRU = block 0, still prefetched
    EXPECT_EQ(c.unusedPrefetches(), 1u);
}

TEST(Cache, RefillDoesNotDowngradeDemandLine)
{
    Cache c(tinyCache());
    c.fill(1, false);
    c.fill(1, true);  // prefetch racing an existing demand line
    EXPECT_FALSE(c.isPrefetched(1));
}

TEST(Cache, InvalidateRemovesBlock)
{
    Cache c(tinyCache());
    c.fill(1);
    EXPECT_TRUE(c.invalidate(1));
    EXPECT_FALSE(c.probe(1));
    EXPECT_FALSE(c.invalidate(1));
}

TEST(Cache, FlushEmptiesEverything)
{
    Cache c(tinyCache());
    c.fill(0);
    c.fill(1);
    c.flush();
    EXPECT_EQ(c.validLines(), 0u);
    EXPECT_FALSE(c.probe(0));
}

TEST(Cache, ValidLinesTracksOccupancy)
{
    Cache c(tinyCache());
    EXPECT_EQ(c.validLines(), 0u);
    c.fill(0);
    c.fill(1);
    c.fill(2);
    EXPECT_EQ(c.validLines(), 3u);
    c.fill(4);  // evicts within the full set 0: occupancy unchanged
    EXPECT_EQ(c.validLines(), 3u);
}

TEST(Cache, MissRatio)
{
    Cache c(tinyCache());
    c.access(0);  // miss
    c.fill(0);
    c.access(0);  // hit
    EXPECT_DOUBLE_EQ(c.missRatio(), 0.5);
}

TEST(CacheDeath, RejectsNonPowerOfTwoSets)
{
    CacheConfig bad = tinyCache(3 * 64, 1);
    EXPECT_EXIT(Cache c(bad), ::testing::ExitedWithCode(1),
                "power");
}

TEST(Cache, DistinctSetsDoNotConflict)
{
    // Blocks 0 and 1 map to different sets in a 2-set cache.
    Cache c(tinyCache());
    c.fill(0);
    c.fill(2);
    c.fill(1);
    c.fill(3);
    EXPECT_TRUE(c.probe(0));
    EXPECT_TRUE(c.probe(1));
    EXPECT_TRUE(c.probe(2));
    EXPECT_TRUE(c.probe(3));
}

/**
 * Property sweep over geometries: filling exactly `ways` distinct
 * conflicting blocks never evicts; one more always evicts.
 */
class CacheGeometry
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(CacheGeometry, AssociativityIsRespected)
{
    const auto [sets_log2, ways] = GetParam();
    const std::uint64_t sets = 1ull << sets_log2;
    Cache c(tinyCache(sets * ways * 64, ways));
    ASSERT_EQ(c.sets(), sets);

    // Fill `ways` blocks all mapping to set 0.
    for (unsigned w = 0; w < ways; ++w)
        EXPECT_EQ(c.fill(w * sets), invalidAddr);
    for (unsigned w = 0; w < ways; ++w)
        EXPECT_TRUE(c.probe(w * sets));

    // One more conflicting fill must evict exactly one resident.
    const Addr victim = c.fill(ways * sets);
    EXPECT_NE(victim, invalidAddr);
    unsigned present = 0;
    for (unsigned w = 0; w <= ways; ++w)
        present += c.probe(w * sets) ? 1 : 0;
    EXPECT_EQ(present, ways);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Combine(::testing::Values(0u, 1u, 3u, 6u),
                       ::testing::Values(1u, 2u, 4u, 16u)));

} // namespace
} // namespace pifetch
