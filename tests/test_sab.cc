/**
 * @file
 * Stream address buffer tests.
 */

#include <gtest/gtest.h>

#include "pif/sab.hh"

namespace pifetch {
namespace {

SpatialRegion
rec(Addr trigger_block, std::initializer_list<int> offsets,
    unsigned before = 2)
{
    SpatialRegion r;
    r.triggerPc = blockBase(trigger_block);
    for (int off : offsets)
        r.setOffset(off, before);
    return r;
}

TEST(Sab, AllocateEmitsWindowBlocksInBitVectorOrder)
{
    HistoryBuffer hist(0);
    hist.append(rec(100, {-1, 1, 2}));
    hist.append(rec(200, {}));

    StreamAddressBuffer sab(7, 2);
    std::vector<Addr> out;
    sab.allocate(&hist, 0, out);
    // Region 100: preceding (-1), trigger, succeeding (+1, +2);
    // then region 200's trigger.
    ASSERT_EQ(out.size(), 5u);
    EXPECT_EQ(out[0], 99u);
    EXPECT_EQ(out[1], 100u);
    EXPECT_EQ(out[2], 101u);
    EXPECT_EQ(out[3], 102u);
    EXPECT_EQ(out[4], 200u);
    EXPECT_TRUE(sab.active());
}

TEST(Sab, WindowLimitsInitialLoad)
{
    HistoryBuffer hist(0);
    for (Addr b = 0; b < 20; ++b)
        hist.append(rec(100 + b * 10, {}));

    StreamAddressBuffer sab(7, 2);
    std::vector<Addr> out;
    sab.allocate(&hist, 0, out);
    EXPECT_EQ(out.size(), 7u);  // window regions only
}

TEST(Sab, AccessAdvancesWindowAndEmitsMore)
{
    HistoryBuffer hist(0);
    for (Addr b = 0; b < 20; ++b)
        hist.append(rec(100 + b * 10, {}));

    StreamAddressBuffer sab(7, 2);
    std::vector<Addr> out;
    sab.allocate(&hist, 0, out);
    out.clear();

    // Fetch of the 3rd window region (trigger 120) retires regions
    // 100 and 110 and loads two more records (170, 180).
    EXPECT_TRUE(sab.onAccess(120, out));
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], 170u);
    EXPECT_EQ(out[1], 180u);
}

TEST(Sab, AccessToUnrelatedBlockDoesNotMatch)
{
    HistoryBuffer hist(0);
    hist.append(rec(100, {}));
    StreamAddressBuffer sab(7, 2);
    std::vector<Addr> out;
    sab.allocate(&hist, 0, out);
    out.clear();
    EXPECT_FALSE(sab.onAccess(500, out));
    EXPECT_TRUE(out.empty());
}

TEST(Sab, NeighbourBlockMatchesViaBitVector)
{
    HistoryBuffer hist(0);
    hist.append(rec(100, {2}));
    StreamAddressBuffer sab(7, 2);
    std::vector<Addr> out;
    sab.allocate(&hist, 0, out);
    EXPECT_TRUE(sab.windowCovers(102));
    EXPECT_FALSE(sab.windowCovers(101));
    out.clear();
    EXPECT_TRUE(sab.onAccess(102, out));
}

TEST(Sab, FrontMatchDoesNotAdvance)
{
    HistoryBuffer hist(0);
    for (Addr b = 0; b < 10; ++b)
        hist.append(rec(100 + b * 10, {}));
    StreamAddressBuffer sab(4, 2);
    std::vector<Addr> out;
    sab.allocate(&hist, 0, out);
    out.clear();
    EXPECT_TRUE(sab.onAccess(100, out));  // front region
    EXPECT_TRUE(out.empty());             // nothing new loaded
}

TEST(Sab, AllocateAtInvalidHistoryDeactivates)
{
    HistoryBuffer hist(2);
    hist.append(rec(1, {}));
    hist.append(rec(2, {}));
    hist.append(rec(3, {}));  // seq 0 now overwritten

    StreamAddressBuffer sab(4, 2);
    std::vector<Addr> out;
    sab.allocate(&hist, 0, out);
    EXPECT_FALSE(sab.active());
    EXPECT_TRUE(out.empty());
}

TEST(Sab, AdvancedCountsRetiredRegions)
{
    HistoryBuffer hist(0);
    for (Addr b = 0; b < 10; ++b)
        hist.append(rec(100 + b * 10, {}));
    StreamAddressBuffer sab(4, 2);
    std::vector<Addr> out;
    sab.allocate(&hist, 0, out);
    sab.onAccess(130, out);  // match 4th region: retires 3
    EXPECT_EQ(sab.advanced(), 3u);
}

TEST(Sab, DeactivateClearsWindow)
{
    HistoryBuffer hist(0);
    hist.append(rec(100, {}));
    StreamAddressBuffer sab(4, 2);
    std::vector<Addr> out;
    sab.allocate(&hist, 0, out);
    sab.deactivate();
    EXPECT_FALSE(sab.active());
    EXPECT_FALSE(sab.windowCovers(100));
}

TEST(Sab, StreamEndStopsRefill)
{
    HistoryBuffer hist(0);
    hist.append(rec(100, {}));
    hist.append(rec(200, {}));
    StreamAddressBuffer sab(7, 2);
    std::vector<Addr> out;
    sab.allocate(&hist, 0, out);
    out.clear();
    // Advancing to the last region leaves a live but short window.
    EXPECT_TRUE(sab.onAccess(200, out));
    EXPECT_TRUE(out.empty());
    EXPECT_TRUE(sab.active());
}

} // namespace
} // namespace pifetch
