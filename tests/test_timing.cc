/**
 * @file
 * Timing model tests.
 */

#include <gtest/gtest.h>

#include "core/cycle_core.hh"

namespace pifetch {
namespace {

CoreConfig
quietCore()
{
    CoreConfig cfg;
    cfg.dataStallFraction = 0.0;  // deterministic tests
    return cfg;
}

TEST(TimingModel, DispatchWidthPacksInstructions)
{
    TimingModel t(quietCore(), 1);
    for (int i = 0; i < 9; ++i)
        t.instruction(0);
    // 9 instructions at 3-wide dispatch = 3 cycles.
    EXPECT_EQ(t.cycles(), 3u);
    EXPECT_EQ(t.instructions(), 9u);
}

TEST(TimingModel, UserInstructionsExcludeTrapLevelOne)
{
    TimingModel t(quietCore(), 1);
    t.instruction(0);
    t.instruction(1);
    t.instruction(0);
    EXPECT_EQ(t.instructions(), 3u);
    EXPECT_EQ(t.userInstructions(), 2u);
}

TEST(TimingModel, FetchStallAddsExposedLatency)
{
    TimingModel t(quietCore(), 1);
    const Cycle before = t.cycles();
    t.fetchStall(20);
    EXPECT_GT(t.cycles(), before);
    EXPECT_GT(t.fetchStallCycles(), 0u);
    // Part of the latency is hidden by ROB buffering.
    EXPECT_LT(t.fetchStallCycles(), 20u);
}

TEST(TimingModel, ShortStallFullyHidden)
{
    TimingModel t(quietCore(), 1);
    t.fetchStall(1);
    EXPECT_EQ(t.fetchStallCycles(), 0u);
}

TEST(TimingModel, MispredictChargesBoundedPenalty)
{
    CoreConfig cfg = quietCore();
    TimingModel t(cfg, 1);
    for (int i = 0; i < 100; ++i)
        t.mispredict();
    const Cycle max_each = cfg.frontendDepth + cfg.maxResolveCycles;
    EXPECT_GT(t.branchPenaltyCycles(), 100u * cfg.frontendDepth);
    EXPECT_LE(t.branchPenaltyCycles(), 100u * max_each);
}

TEST(TimingModel, UipcReflectsStalls)
{
    TimingModel a(quietCore(), 1);
    TimingModel b(quietCore(), 1);
    for (int i = 0; i < 3000; ++i) {
        a.instruction(0);
        b.instruction(0);
    }
    b.fetchStall(1000);
    EXPECT_GT(a.uipc(), b.uipc());
    EXPECT_NEAR(a.uipc(), 3.0, 0.01);
}

TEST(TimingModel, ResetStatsZeroesEverything)
{
    TimingModel t(quietCore(), 1);
    t.instruction(0);
    t.fetchStall(50);
    t.mispredict();
    t.resetStats();
    EXPECT_EQ(t.cycles(), 0u);
    EXPECT_EQ(t.instructions(), 0u);
    EXPECT_EQ(t.fetchStallCycles(), 0u);
    EXPECT_EQ(t.branchPenaltyCycles(), 0u);
    EXPECT_DOUBLE_EQ(t.uipc(), 0.0);
}

TEST(TimingModel, DataStallsSlowRetirement)
{
    CoreConfig stalling = quietCore();
    stalling.dataStallFraction = 0.5;
    TimingModel with(stalling, 1);
    TimingModel without(quietCore(), 1);
    for (int i = 0; i < 10000; ++i) {
        with.instruction(0);
        without.instruction(0);
    }
    EXPECT_GT(with.cycles(), without.cycles() * 2);
}

} // namespace
} // namespace pifetch
